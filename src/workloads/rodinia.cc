/**
 * @file
 * Divergent workloads after the Rodinia suite used by the paper
 * (Table 1): BFS, HotSpot, LavaMD, Needleman-Wunsch-style sequence
 * scoring, particle filter, PathFinder, K-means, and SRAD. Each
 * kernel reproduces the control-flow structure that makes the
 * original divergent; see DESIGN.md for per-kernel simplifications.
 */

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "workloads/registry.hh"

namespace iwc::workloads
{

using isa::CondMod;
using isa::DataType;
using isa::KernelBuilder;

namespace
{

std::vector<float>
randomFloats(std::uint64_t n, std::uint64_t seed, float lo = -1.0f,
             float hi = 1.0f)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = lo + (hi - lo) * rng.nextFloat();
    return v;
}

} // namespace

Workload
makeBfs(gpu::Device &dev, unsigned scale)
{
    const std::uint64_t nodes = 4096ull * scale;
    const unsigned max_degree = 12;

    // Random graph in CSR form with skewed degrees.
    Rng rng(81);
    std::vector<std::int32_t> row_offsets(nodes + 1);
    std::vector<std::int32_t> edges;
    for (std::uint64_t v = 0; v < nodes; ++v) {
        row_offsets[v] = static_cast<std::int32_t>(edges.size());
        const unsigned degree =
            static_cast<unsigned>(rng.below(max_degree + 1));
        for (unsigned e = 0; e < degree; ++e)
            edges.push_back(
                static_cast<std::int32_t>(rng.below(nodes)));
    }
    row_offsets[nodes] = static_cast<std::int32_t>(edges.size());

    // One BFS level: ~25% of nodes in the frontier, all at cost 3.
    const std::int32_t level = 3;
    std::vector<std::int32_t> in_frontier(nodes), visited(nodes),
        cost(nodes, 0);
    for (std::uint64_t v = 0; v < nodes; ++v) {
        in_frontier[v] = rng.chance(0.25) ? 1 : 0;
        visited[v] = in_frontier[v] | (rng.chance(0.3) ? 1 : 0);
        if (in_frontier[v])
            cost[v] = level;
    }

    KernelBuilder b("bfs", 16);
    auto rows_buf = b.argBuffer("rows");
    auto edges_buf = b.argBuffer("edges");
    auto front_buf = b.argBuffer("frontier");
    auto visited_buf = b.argBuffer("visited");
    auto out_buf = b.argBuffer("out_frontier");
    auto cost_buf = b.argBuffer("cost");

    auto addr = b.tmp(DataType::UD);
    auto in_f = b.tmp(DataType::D);
    b.mad(addr, b.globalId(), b.ud(4), front_buf);
    b.gatherLoad(in_f, addr, DataType::D);
    b.cmp(CondMod::Ne, 0, in_f, b.d(0));
    b.if_(0);
    {
        auto start = b.tmp(DataType::D);
        auto end = b.tmp(DataType::D);
        auto gid1 = b.tmp(DataType::UD);
        b.mad(addr, b.globalId(), b.ud(4), rows_buf);
        b.gatherLoad(start, addr, DataType::D);
        b.add(gid1, b.globalId(), b.ud(1));
        b.mad(addr, gid1, b.ud(4), rows_buf);
        b.gatherLoad(end, addr, DataType::D);

        auto my_cost = b.tmp(DataType::D);
        b.mad(addr, b.globalId(), b.ud(4), cost_buf);
        b.gatherLoad(my_cost, addr, DataType::D);
        auto next_cost = b.tmp(DataType::D);
        b.add(next_cost, my_cost, b.d(1));

        auto i = b.tmp(DataType::D);
        auto nb = b.tmp(DataType::D);
        auto vis = b.tmp(DataType::D);
        auto one = b.tmp(DataType::D);
        b.mov(i, start);
        b.mov(one, b.d(1));

        b.cmp(CondMod::Lt, 1, i, end);
        b.if_(1);
        b.loop_();
        {
            b.mad(addr, i, b.ud(4), edges_buf);
            b.gatherLoad(nb, addr, DataType::D);
            b.mad(addr, nb, b.ud(4), visited_buf);
            b.gatherLoad(vis, addr, DataType::D);
            b.cmp(CondMod::Eq, 1, vis, b.d(0));
            b.if_(1);
            b.mad(addr, nb, b.ud(4), out_buf);
            b.scatterStore(addr, one, DataType::D);
            b.mad(addr, nb, b.ud(4), cost_buf);
            b.scatterStore(addr, next_cost, DataType::D);
            b.endif_();
            b.add(i, i, b.d(1));
            b.cmp(CondMod::Lt, 1, i, end);
        }
        b.endLoop(1);
        b.endif_();
    }
    b.endif_();

    Workload w;
    w.kernel = b.build();
    w.name = "bfs";
    w.description = "one BFS frontier expansion over a CSR graph";
    w.expectDivergent = true;
    w.globalSize = nodes;
    w.localSize = 64;

    const Addr dev_rows = dev.uploadVector(row_offsets);
    const Addr dev_edges = dev.uploadVector(edges);
    const Addr dev_front = dev.uploadVector(in_frontier);
    const Addr dev_visited = dev.uploadVector(visited);
    std::vector<std::int32_t> zero(nodes, 0);
    const Addr dev_out = dev.uploadVector(zero);
    const Addr dev_cost = dev.uploadVector(cost);
    w.args = {gpu::Arg::buffer(dev_rows), gpu::Arg::buffer(dev_edges),
              gpu::Arg::buffer(dev_front), gpu::Arg::buffer(dev_visited),
              gpu::Arg::buffer(dev_out), gpu::Arg::buffer(dev_cost)};

    w.check = [=](gpu::Device &d) {
        std::vector<std::int32_t> exp_out(nodes, 0);
        std::vector<std::int32_t> exp_cost = cost;
        for (std::uint64_t v = 0; v < nodes; ++v) {
            if (!in_frontier[v])
                continue;
            for (std::int32_t e = row_offsets[v];
                 e < row_offsets[v + 1]; ++e) {
                const std::int32_t nb = edges[e];
                if (!visited[nb]) {
                    exp_out[nb] = 1;
                    exp_cost[nb] = level + 1;
                }
            }
        }
        return checkIntBuffer(d, dev_out, exp_out, "bfs.out") &&
            checkIntBuffer(d, dev_cost, exp_cost, "bfs.cost");
    };
    return w;
}

Workload
makeHotspot(gpu::Device &dev, unsigned scale)
{
    const unsigned dim = 64 * std::min(scale, 4u);
    const std::uint64_t n = static_cast<std::uint64_t>(dim) * dim;
    const float k_coef = 0.1f;
    const float step = 0.5f;

    KernelBuilder b("hotspot", 16);
    auto temp_buf = b.argBuffer("temp");
    auto power_buf = b.argBuffer("power");
    auto out_buf = b.argBuffer("out");
    auto dim_arg = b.argU("dim");

    auto row = b.tmp(DataType::UD);
    auto col = b.tmp(DataType::UD);
    auto tmp = b.tmp(DataType::UD);
    b.div(row, b.globalId(), dim_arg);
    b.mul(tmp, row, dim_arg);
    b.sub(col, b.globalId(), tmp);

    auto addr = b.tmp(DataType::UD);
    auto t = b.tmp(DataType::F);
    b.mad(addr, b.globalId(), b.ud(4), temp_buf);
    b.gatherLoad(t, addr, DataType::F);

    auto nsum = b.tmp(DataType::F);
    auto nv = b.tmp(DataType::F);
    auto idx = b.tmp(DataType::UD);
    auto dim_m1 = b.tmp(DataType::UD);
    b.sub(dim_m1, dim_arg, b.ud(1));
    b.mov(nsum, b.f(0.0f));

    // North neighbor (clamped at the top edge).
    b.cmp(CondMod::Gt, 0, row, b.ud(0));
    b.if_(0);
    b.sub(idx, b.globalId(), dim_arg);
    b.mad(addr, idx, b.ud(4), temp_buf);
    b.gatherLoad(nv, addr, DataType::F);
    b.else_();
    b.mov(nv, t);
    b.endif_();
    b.add(nsum, nsum, nv);

    // South neighbor.
    b.cmp(CondMod::Lt, 0, row, dim_m1);
    b.if_(0);
    b.add(idx, b.globalId(), dim_arg);
    b.mad(addr, idx, b.ud(4), temp_buf);
    b.gatherLoad(nv, addr, DataType::F);
    b.else_();
    b.mov(nv, t);
    b.endif_();
    b.add(nsum, nsum, nv);

    // West neighbor.
    b.cmp(CondMod::Gt, 0, col, b.ud(0));
    b.if_(0);
    b.sub(idx, b.globalId(), b.ud(1));
    b.mad(addr, idx, b.ud(4), temp_buf);
    b.gatherLoad(nv, addr, DataType::F);
    b.else_();
    b.mov(nv, t);
    b.endif_();
    b.add(nsum, nsum, nv);

    // East neighbor.
    b.cmp(CondMod::Lt, 0, col, dim_m1);
    b.if_(0);
    b.add(idx, b.globalId(), b.ud(1));
    b.mad(addr, idx, b.ud(4), temp_buf);
    b.gatherLoad(nv, addr, DataType::F);
    b.else_();
    b.mov(nv, t);
    b.endif_();
    b.add(nsum, nsum, nv);

    auto p = b.tmp(DataType::F);
    b.mad(addr, b.globalId(), b.ud(4), power_buf);
    b.gatherLoad(p, addr, DataType::F);

    auto delta = b.tmp(DataType::F);
    auto t4 = b.tmp(DataType::F);
    b.mul(t4, t, b.f(4.0f));
    b.sub(delta, nsum, t4);
    b.mul(delta, delta, b.f(k_coef));
    b.add(delta, delta, p);

    // Hot cells run an iterative damping pass (the data-dependent
    // divergent path; Rodinia's hotspot relaxes hot cells harder).
    auto out_v = b.tmp(DataType::F);
    b.mad(out_v, delta, b.f(step), t);
    b.cmp(CondMod::Gt, 0, delta, b.f(0.05f));
    b.if_(0);
    {
        auto it = b.tmp(DataType::D);
        b.mov(it, b.d(0));
        b.loop_();
        b.mul(out_v, out_v, b.f(0.98f));
        b.mad(out_v, out_v, b.f(1.0f), b.f(0.001f));
        b.add(it, it, b.d(1));
        b.cmp(CondMod::Lt, 1, it, b.d(6));
        b.endLoop(1);
    }
    b.endif_();

    b.mad(addr, b.globalId(), b.ud(4), out_buf);
    b.scatterStore(addr, out_v, DataType::F);

    Workload w;
    w.kernel = b.build();
    w.name = "hotspot";
    w.description = "thermal stencil with boundary and hot-cell branches";
    w.expectDivergent = true;
    w.globalSize = n;
    w.localSize = 64;

    const auto host_t = randomFloats(n, 91, 0.0f, 1.0f);
    const auto host_p = randomFloats(n, 92, 0.0f, 0.1f);
    const Addr dev_t = dev.uploadVector(host_t);
    const Addr dev_p = dev.uploadVector(host_p);
    const Addr dev_o = dev.allocBuffer(n * sizeof(float));
    w.args = {gpu::Arg::buffer(dev_t), gpu::Arg::buffer(dev_p),
              gpu::Arg::buffer(dev_o), gpu::Arg::u32(dim)};

    w.check = [dev_o, host_t, host_p, dim, n, k_coef,
               step](gpu::Device &d) {
        std::vector<float> expected(n);
        for (unsigned r = 0; r < dim; ++r) {
            for (unsigned c = 0; c < dim; ++c) {
                const std::uint64_t i =
                    static_cast<std::uint64_t>(r) * dim + c;
                const double t = host_t[i];
                double nsum = 0;
                nsum = static_cast<float>(
                    nsum + (r > 0 ? host_t[i - dim] : t));
                nsum = static_cast<float>(
                    nsum + (r < dim - 1 ? host_t[i + dim] : t));
                nsum = static_cast<float>(
                    nsum + (c > 0 ? host_t[i - 1] : t));
                nsum = static_cast<float>(
                    nsum + (c < dim - 1 ? host_t[i + 1] : t));
                double delta = static_cast<float>(
                    nsum - static_cast<float>(t * double(4.0f)));
                delta = static_cast<float>(delta * double(k_coef));
                delta = static_cast<float>(delta + host_p[i]);
                double out = static_cast<float>(
                    delta * double(step) + t);
                if (delta > double(0.05f)) {
                    for (int it = 0; it < 6; ++it) {
                        out = static_cast<float>(out * double(0.98f));
                        out = static_cast<float>(
                            out * double(1.0f) + double(0.001f));
                    }
                }
                expected[i] = static_cast<float>(out);
            }
        }
        return checkFloatBuffer(d, dev_o, expected, "hotspot", 1e-3);
    };
    return w;
}

Workload
makeLavaMd(gpu::Device &dev, unsigned scale)
{
    // Particles per workgroup vary 16..128 neighbors: the deliberate
    // cross-EU imbalance that denies LavaMD execution-time gains in
    // the paper's Figure 12 despite healthy EU-cycle savings.
    const std::uint64_t particles = 2048ull * scale;
    const unsigned local = 64;
    const float cutoff2 = 0.5f;

    KernelBuilder b("lavamd", 16);
    auto pos_buf = b.argBuffer("pos"); // x,y interleaved
    auto out_buf = b.argBuffer("out");
    auto count_arg = b.argU("count"); // particle count (power of two)

    // Neighbor loop length depends on the workgroup id (imbalance).
    auto neighbors = b.tmp(DataType::UD);
    b.and_(neighbors, b.groupId(), b.ud(7));
    b.mul(neighbors, neighbors, b.ud(16));
    b.add(neighbors, neighbors, b.ud(16));
    auto neighbors_i = b.tmp(DataType::D);
    b.mov(neighbors_i, neighbors);

    auto mask_v = b.tmp(DataType::UD);
    b.sub(mask_v, count_arg, b.ud(1));

    auto addr = b.tmp(DataType::UD);
    auto px = b.tmp(DataType::F);
    auto py = b.tmp(DataType::F);
    auto base = b.tmp(DataType::UD);
    b.mul(base, b.globalId(), b.ud(8));
    b.add(base, base, pos_buf);
    b.gatherLoad(px, base, DataType::F);
    b.add(addr, base, b.ud(4));
    b.gatherLoad(py, addr, DataType::F);

    auto acc = b.tmp(DataType::F);
    auto k = b.tmp(DataType::D);
    auto nb = b.tmp(DataType::UD);
    auto nx = b.tmp(DataType::F);
    auto ny = b.tmp(DataType::F);
    auto dx = b.tmp(DataType::F);
    auto dy = b.tmp(DataType::F);
    auto r2 = b.tmp(DataType::F);
    auto e = b.tmp(DataType::F);
    b.mov(acc, b.f(0.0f));
    b.mov(k, b.d(0));

    b.loop_();
    {
        // nb = (gid * 1103515245 + k * 12345) & (count - 1)
        b.mul(nb, b.globalId(), b.ud(1103515245u));
        auto k_term = b.tmp(DataType::UD);
        b.mul(k_term, k, b.ud(12345u));
        b.add(nb, nb, k_term);
        b.and_(nb, nb, mask_v);

        b.mul(addr, nb, b.ud(8));
        b.add(addr, addr, pos_buf);
        b.gatherLoad(nx, addr, DataType::F);
        b.add(addr, addr, b.ud(4));
        b.gatherLoad(ny, addr, DataType::F);

        b.sub(dx, px, nx);
        b.sub(dy, py, ny);
        b.mul(r2, dx, dx);
        b.mad(r2, dy, dy, r2);

        // Only close pairs contribute (the divergent cutoff branch).
        b.cmp(CondMod::Lt, 0, r2, b.f(cutoff2));
        b.if_(0);
        auto neg_r2 = b.tmp(DataType::F);
        b.mul(neg_r2, r2, b.f(-4.0f));
        b.exp2(e, neg_r2);
        b.mad(acc, e, b.f(0.5f), acc);
        b.endif_();

        b.add(k, k, b.d(1));
        b.cmp(CondMod::Lt, 1, k, neighbors_i);
    }
    b.endLoop(1);

    b.mad(addr, b.globalId(), b.ud(4), out_buf);
    b.scatterStore(addr, acc, DataType::F);

    Workload w;
    w.kernel = b.build();
    w.name = "lavamd";
    w.description = "cutoff-gated particle interactions, imbalanced WGs";
    w.expectDivergent = true;
    w.globalSize = particles;
    w.localSize = local;

    const auto host_pos = randomFloats(particles * 2, 95, 0.0f, 2.0f);
    const Addr dev_pos = dev.uploadVector(host_pos);
    const Addr dev_out = dev.allocBuffer(particles * sizeof(float));
    w.args = {gpu::Arg::buffer(dev_pos), gpu::Arg::buffer(dev_out),
              gpu::Arg::u32(static_cast<std::uint32_t>(particles))};

    w.check = [dev_out, host_pos, particles, local,
               cutoff2](gpu::Device &d) {
        std::vector<float> expected(particles);
        for (std::uint64_t p = 0; p < particles; ++p) {
            const unsigned wg = static_cast<unsigned>(p / local);
            const unsigned neighbors = (wg & 7) * 16 + 16;
            const float px = host_pos[p * 2];
            const float py = host_pos[p * 2 + 1];
            double acc = 0;
            for (unsigned k = 0; k < neighbors; ++k) {
                const std::uint32_t nb =
                    (static_cast<std::uint32_t>(p) * 1103515245u +
                     k * 12345u) &
                    static_cast<std::uint32_t>(particles - 1);
                const float dx = static_cast<float>(
                    double(px) - double(host_pos[nb * 2]));
                const float dy = static_cast<float>(
                    double(py) - double(host_pos[nb * 2 + 1]));
                float r2 = static_cast<float>(double(dx) * dx);
                r2 = static_cast<float>(double(dy) * dy + r2);
                if (r2 < cutoff2) {
                    const float neg =
                        static_cast<float>(double(r2) * double(-4.0f));
                    const float e =
                        static_cast<float>(std::exp2(double(neg)));
                    acc = static_cast<float>(
                        double(e) * double(0.5f) + acc);
                }
            }
            expected[p] = static_cast<float>(acc);
        }
        return checkFloatBuffer(d, dev_out, expected, "lavamd", 1e-3);
    };
    return w;
}

Workload
makeNeedlemanWunsch(gpu::Device &dev, unsigned scale)
{
    // Per-work-item sequence scoring with match/gap branches (the
    // divergent inner kernel of NW; the wavefront driver is host-side
    // in the original and does not affect EU divergence).
    const std::uint64_t n = 2048ull * scale;
    const unsigned seq_len = 24;

    Rng rng(97);
    std::vector<std::int32_t> seq_a(n * seq_len), seq_b(n * seq_len);
    for (auto &x : seq_a)
        x = static_cast<std::int32_t>(rng.below(4));
    for (auto &x : seq_b)
        x = static_cast<std::int32_t>(rng.below(4));

    KernelBuilder b("nw", 16);
    auto a_buf = b.argBuffer("a");
    auto b_buf = b.argBuffer("b");
    auto out_buf = b.argBuffer("out");

    auto addr = b.tmp(DataType::UD);
    auto base = b.tmp(DataType::UD);
    auto score = b.tmp(DataType::D);
    auto best = b.tmp(DataType::D);
    auto k = b.tmp(DataType::D);
    auto ca = b.tmp(DataType::D);
    auto cb = b.tmp(DataType::D);
    b.mov(score, b.d(0));
    b.mov(best, b.d(0));
    b.mov(k, b.d(0));
    b.mul(base, b.globalId(), b.ud(seq_len * 4));

    b.loop_();
    {
        b.mad(addr, k, b.ud(4), base);
        b.add(addr, addr, a_buf);
        b.gatherLoad(ca, addr, DataType::D);
        b.mad(addr, k, b.ud(4), base);
        b.add(addr, addr, b_buf);
        b.gatherLoad(cb, addr, DataType::D);

        b.cmp(CondMod::Eq, 0, ca, cb);
        b.if_(0);
        {
            // Match: extend with an affine bonus schedule.
            b.add(score, score, b.d(3));
            b.shl(ca, ca, b.d(1));
            b.add(score, score, ca);
            b.and_(score, score, b.d(0xffff));
            b.add(score, score, b.d(1));
        }
        b.else_();
        {
            b.cmp(CondMod::Gt, 1, score, b.d(4));
            b.if_(1);
            // Affordable gap: open + extend penalties.
            b.sub(score, score, b.d(2));
            b.asr(cb, score, b.d(3));
            b.sub(score, score, cb);
            b.max_(score, score, b.d(0));
            b.else_();
            b.mov(score, b.d(0)); // local restart
            b.endif_();
        }
        b.endif_();

        b.cmp(CondMod::Gt, 0, score, best);
        b.if_(0);
        b.mov(best, score);
        b.endif_();

        b.add(k, k, b.d(1));
        b.cmp(CondMod::Lt, 1, k, b.d(seq_len));
    }
    b.endLoop(1);

    b.mad(addr, b.globalId(), b.ud(4), out_buf);
    b.scatterStore(addr, best, DataType::D);

    Workload w;
    w.kernel = b.build();
    w.name = "nw";
    w.description = "sequence scoring with match/gap branches";
    w.expectDivergent = true;
    w.globalSize = n;
    w.localSize = 64;

    const Addr dev_a = dev.uploadVector(seq_a);
    const Addr dev_b = dev.uploadVector(seq_b);
    const Addr dev_o = dev.allocBuffer(n * sizeof(std::int32_t));
    w.args = {gpu::Arg::buffer(dev_a), gpu::Arg::buffer(dev_b),
              gpu::Arg::buffer(dev_o)};

    w.check = [dev_o, seq_a, seq_b, n, seq_len](gpu::Device &d) {
        std::vector<std::int32_t> expected(n);
        for (std::uint64_t wi = 0; wi < n; ++wi) {
            std::int32_t score = 0, best = 0;
            for (unsigned k = 0; k < seq_len; ++k) {
                std::int32_t ca = seq_a[wi * seq_len + k];
                const std::int32_t cb = seq_b[wi * seq_len + k];
                if (ca == cb) {
                    score += 3;
                    ca <<= 1;
                    score += ca;
                    score &= 0xffff;
                    score += 1;
                } else if (score > 4) {
                    score -= 2;
                    score -= score >> 3;
                    score = std::max(score, 0);
                } else {
                    score = 0;
                }
                if (score > best)
                    best = score;
            }
            expected[wi] = best;
        }
        return checkIntBuffer(d, dev_o, expected, "nw");
    };
    return w;
}

Workload
makeParticleFilter(gpu::Device &dev, unsigned scale)
{
    const std::uint64_t n = 2048ull * scale;

    Rng rng(99);
    std::vector<float> weights(n);
    for (auto &x : weights)
        x = rng.nextFloat();

    KernelBuilder b("partfilt", 16);
    auto w_buf = b.argBuffer("weights");
    auto out_buf = b.argBuffer("out");
    auto n_arg = b.argU("n");

    // u = pseudo-random threshold per work item.
    auto u = b.tmp(DataType::F);
    auto h = b.tmp(DataType::UD);
    b.mul(h, b.globalId(), b.ud(2654435761u));
    b.and_(h, h, b.ud(0xffff));
    b.mov(u, h);
    b.mul(u, u, b.f(1.0f / 65536.0f));
    b.mul(u, u, b.f(0.9f));

    // Systematic resampling walk: advance until weight[idx] >= u
    // (variable trip count -> loop divergence).
    auto mask_v = b.tmp(DataType::UD);
    b.sub(mask_v, n_arg, b.ud(1));
    auto idx = b.tmp(DataType::UD);
    auto steps = b.tmp(DataType::D);
    auto wv = b.tmp(DataType::F);
    auto addr = b.tmp(DataType::UD);
    b.mov(idx, b.globalId());
    b.mov(steps, b.d(0));

    b.loop_();
    {
        b.mad(addr, idx, b.ud(4), w_buf);
        b.gatherLoad(wv, addr, DataType::F);
        b.cmp(CondMod::Ge, 0, wv, u);
        b.breakIf(0);
        b.add(idx, idx, b.ud(7));
        b.and_(idx, idx, mask_v);
        b.add(steps, steps, b.d(1));
        b.cmp(CondMod::Lt, 1, steps, b.d(32));
    }
    b.endLoop(1);

    auto out_v = b.tmp(DataType::D);
    b.mov(out_v, idx);
    b.mad(addr, b.globalId(), b.ud(4), out_buf);
    b.scatterStore(addr, out_v, DataType::D);

    Workload w;
    w.kernel = b.build();
    w.name = "partfilt";
    w.description = "particle-filter resampling walk";
    w.expectDivergent = true;
    w.globalSize = n;
    w.localSize = 64;

    const Addr dev_w = dev.uploadVector(weights);
    const Addr dev_o = dev.allocBuffer(n * sizeof(std::int32_t));
    w.args = {gpu::Arg::buffer(dev_w), gpu::Arg::buffer(dev_o),
              gpu::Arg::u32(static_cast<std::uint32_t>(n))};

    w.check = [dev_o, weights, n](gpu::Device &d) {
        std::vector<std::int32_t> expected(n);
        for (std::uint64_t wi = 0; wi < n; ++wi) {
            const std::uint32_t hash =
                static_cast<std::uint32_t>(wi) * 2654435761u & 0xffff;
            float u = static_cast<float>(
                double(static_cast<float>(hash)) *
                double(1.0f / 65536.0f));
            u = static_cast<float>(double(u) * double(0.9f));
            std::uint32_t idx = static_cast<std::uint32_t>(wi);
            for (int s = 0; s < 32; ++s) {
                if (weights[idx] >= u)
                    break;
                idx = (idx + 7) &
                    static_cast<std::uint32_t>(n - 1);
            }
            expected[wi] = static_cast<std::int32_t>(idx);
        }
        return checkIntBuffer(d, dev_o, expected, "partfilt");
    };
    return w;
}

Workload
makePathFinder(gpu::Device &dev, unsigned scale)
{
    const std::uint64_t n = 4096ull * scale;

    KernelBuilder b("path", 16);
    auto prev_buf = b.argBuffer("prev");
    auto data_buf = b.argBuffer("data");
    auto out_buf = b.argBuffer("out");
    auto n_arg = b.argU("n");

    auto addr = b.tmp(DataType::UD);
    auto left = b.tmp(DataType::D);
    auto mid = b.tmp(DataType::D);
    auto right = b.tmp(DataType::D);
    auto idx = b.tmp(DataType::UD);
    auto n_m1 = b.tmp(DataType::UD);
    b.sub(n_m1, n_arg, b.ud(1));

    b.mad(addr, b.globalId(), b.ud(4), prev_buf);
    b.gatherLoad(mid, addr, DataType::D);

    b.cmp(CondMod::Gt, 0, b.globalId(), b.ud(0));
    b.if_(0);
    b.sub(idx, b.globalId(), b.ud(1));
    b.mad(addr, idx, b.ud(4), prev_buf);
    b.gatherLoad(left, addr, DataType::D);
    b.else_();
    b.mov(left, mid);
    b.endif_();

    b.cmp(CondMod::Lt, 0, b.globalId(), n_m1);
    b.if_(0);
    b.add(idx, b.globalId(), b.ud(1));
    b.mad(addr, idx, b.ud(4), prev_buf);
    b.gatherLoad(right, addr, DataType::D);
    b.else_();
    b.mov(right, mid);
    b.endif_();

    auto best = b.tmp(DataType::D);
    b.min_(best, left, mid);
    b.min_(best, best, right);

    // Straight-path bonus: data-dependent branch.
    auto dv = b.tmp(DataType::D);
    b.mad(addr, b.globalId(), b.ud(4), data_buf);
    b.gatherLoad(dv, addr, DataType::D);
    auto out_v = b.tmp(DataType::D);
    b.add(out_v, best, dv);
    b.cmp(CondMod::Eq, 0, best, mid);
    b.if_(0);
    b.sub(out_v, out_v, b.d(1));
    b.endif_();

    b.mad(addr, b.globalId(), b.ud(4), out_buf);
    b.scatterStore(addr, out_v, DataType::D);

    Workload w;
    w.kernel = b.build();
    w.name = "path";
    w.description = "grid path relaxation step";
    w.expectDivergent = true;
    w.globalSize = n;
    w.localSize = 64;

    Rng rng(103);
    std::vector<std::int32_t> prev(n), data(n);
    for (auto &x : prev)
        x = static_cast<std::int32_t>(rng.below(100));
    for (auto &x : data)
        x = static_cast<std::int32_t>(rng.below(10));
    const Addr dev_prev = dev.uploadVector(prev);
    const Addr dev_data = dev.uploadVector(data);
    const Addr dev_out = dev.allocBuffer(n * sizeof(std::int32_t));
    w.args = {gpu::Arg::buffer(dev_prev), gpu::Arg::buffer(dev_data),
              gpu::Arg::buffer(dev_out),
              gpu::Arg::u32(static_cast<std::uint32_t>(n))};

    w.check = [dev_out, prev, data, n](gpu::Device &d) {
        std::vector<std::int32_t> expected(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            const std::int32_t left = i > 0 ? prev[i - 1] : prev[i];
            const std::int32_t right =
                i < n - 1 ? prev[i + 1] : prev[i];
            const std::int32_t best =
                std::min(std::min(left, prev[i]), right);
            std::int32_t out = best + data[i];
            if (best == prev[i])
                out -= 1;
            expected[i] = out;
        }
        return checkIntBuffer(d, dev_out, expected, "path");
    };
    return w;
}

Workload
makeKmeans(gpu::Device &dev, unsigned scale)
{
    const std::uint64_t points = 4096ull * scale;
    const unsigned clusters = 8;

    KernelBuilder b("kmeans", 16);
    auto pts_buf = b.argBuffer("points"); // x,y interleaved
    auto ctr_buf = b.argBuffer("centers");
    auto out_buf = b.argBuffer("out");

    auto addr = b.tmp(DataType::UD);
    auto base = b.tmp(DataType::UD);
    auto px = b.tmp(DataType::F);
    auto py = b.tmp(DataType::F);
    b.mul(base, b.globalId(), b.ud(8));
    b.add(base, base, pts_buf);
    b.gatherLoad(px, base, DataType::F);
    b.add(addr, base, b.ud(4));
    b.gatherLoad(py, addr, DataType::F);

    auto best_d = b.tmp(DataType::F);
    auto best_k = b.tmp(DataType::D);
    auto k = b.tmp(DataType::D);
    auto cx = b.tmp(DataType::F);
    auto cy = b.tmp(DataType::F);
    auto dx = b.tmp(DataType::F);
    auto dy = b.tmp(DataType::F);
    auto d2 = b.tmp(DataType::F);
    b.mov(best_d, b.f(1e30f));
    b.mov(best_k, b.d(-1));
    b.mov(k, b.d(0));

    b.loop_();
    {
        b.mul(addr, k, b.ud(8));
        b.add(addr, addr, ctr_buf);
        b.gatherLoad(cx, addr, DataType::F);
        b.add(addr, addr, b.ud(4));
        b.gatherLoad(cy, addr, DataType::F);
        b.sub(dx, px, cx);
        b.sub(dy, py, cy);
        b.mul(d2, dx, dx);
        b.mad(d2, dy, dy, d2);
        b.cmp(CondMod::Lt, 0, d2, best_d);
        b.if_(0);
        b.mov(best_d, d2);
        b.mov(best_k, k);
        b.endif_();
        b.add(k, k, b.d(1));
        b.cmp(CondMod::Lt, 1, k, b.d(clusters));
    }
    b.endLoop(1);

    b.mad(addr, b.globalId(), b.ud(4), out_buf);
    b.scatterStore(addr, best_k, DataType::D);

    Workload w;
    w.kernel = b.build();
    w.name = "kmeans";
    w.description = "k-means nearest-cluster assignment";
    w.expectDivergent = true;
    w.globalSize = points;
    w.localSize = 64;

    const auto host_pts = randomFloats(points * 2, 107, 0.0f, 4.0f);
    const auto host_ctr = randomFloats(clusters * 2, 108, 0.0f, 4.0f);
    const Addr dev_pts = dev.uploadVector(host_pts);
    const Addr dev_ctr = dev.uploadVector(host_ctr);
    const Addr dev_out = dev.allocBuffer(points * sizeof(std::int32_t));
    w.args = {gpu::Arg::buffer(dev_pts), gpu::Arg::buffer(dev_ctr),
              gpu::Arg::buffer(dev_out)};

    w.check = [dev_out, host_pts, host_ctr, points,
               clusters](gpu::Device &d) {
        std::vector<std::int32_t> expected(points);
        for (std::uint64_t p = 0; p < points; ++p) {
            float best_d = 1e30f;
            std::int32_t best_k = -1;
            for (unsigned k = 0; k < clusters; ++k) {
                const float dx = static_cast<float>(
                    double(host_pts[p * 2]) - double(host_ctr[k * 2]));
                const float dy = static_cast<float>(
                    double(host_pts[p * 2 + 1]) -
                    double(host_ctr[k * 2 + 1]));
                float d2 = static_cast<float>(double(dx) * dx);
                d2 = static_cast<float>(double(dy) * dy + d2);
                if (d2 < best_d) {
                    best_d = d2;
                    best_k = static_cast<std::int32_t>(k);
                }
            }
            expected[p] = best_k;
        }
        return checkIntBuffer(d, dev_out, expected, "kmeans");
    };
    return w;
}

Workload
makeSrad(gpu::Device &dev, unsigned scale)
{
    const unsigned dim = 64 * std::min(scale, 4u);
    const std::uint64_t n = static_cast<std::uint64_t>(dim) * dim;

    KernelBuilder b("srad", 16);
    auto img_buf = b.argBuffer("img");
    auto out_buf = b.argBuffer("out");
    auto dim_arg = b.argU("dim");

    auto row = b.tmp(DataType::UD);
    auto col = b.tmp(DataType::UD);
    auto tmp = b.tmp(DataType::UD);
    b.div(row, b.globalId(), dim_arg);
    b.mul(tmp, row, dim_arg);
    b.sub(col, b.globalId(), tmp);
    auto dim_m1 = b.tmp(DataType::UD);
    b.sub(dim_m1, dim_arg, b.ud(1));

    auto addr = b.tmp(DataType::UD);
    auto t = b.tmp(DataType::F);
    b.mad(addr, b.globalId(), b.ud(4), img_buf);
    b.gatherLoad(t, addr, DataType::F);

    // Gradient sum over clamped 4-neighborhood.
    auto g2 = b.tmp(DataType::F);
    auto nv = b.tmp(DataType::F);
    auto diff = b.tmp(DataType::F);
    auto idx = b.tmp(DataType::UD);
    b.mov(g2, b.f(0.0f));

    auto accumulate = [&]() {
        b.sub(diff, nv, t);
        b.mad(g2, diff, diff, g2);
    };

    b.cmp(CondMod::Gt, 0, row, b.ud(0));
    b.if_(0);
    b.sub(idx, b.globalId(), dim_arg);
    b.mad(addr, idx, b.ud(4), img_buf);
    b.gatherLoad(nv, addr, DataType::F);
    accumulate();
    b.endif_();

    b.cmp(CondMod::Lt, 0, row, dim_m1);
    b.if_(0);
    b.add(idx, b.globalId(), dim_arg);
    b.mad(addr, idx, b.ud(4), img_buf);
    b.gatherLoad(nv, addr, DataType::F);
    accumulate();
    b.endif_();

    b.cmp(CondMod::Gt, 0, col, b.ud(0));
    b.if_(0);
    b.sub(idx, b.globalId(), b.ud(1));
    b.mad(addr, idx, b.ud(4), img_buf);
    b.gatherLoad(nv, addr, DataType::F);
    accumulate();
    b.endif_();

    b.cmp(CondMod::Lt, 0, col, dim_m1);
    b.if_(0);
    b.add(idx, b.globalId(), b.ud(1));
    b.mad(addr, idx, b.ud(4), img_buf);
    b.gatherLoad(nv, addr, DataType::F);
    accumulate();
    b.endif_();

    // Diffusion coefficient with a threshold branch.
    auto c = b.tmp(DataType::F);
    auto denom = b.tmp(DataType::F);
    b.add(denom, g2, b.f(1.0f));
    b.inv(c, denom);
    auto out_v = b.tmp(DataType::F);
    b.cmp(CondMod::Gt, 0, g2, b.f(0.25f));
    b.if_(0);
    {
        // Strong-edge cells diffuse less and get iteratively
        // sharpened (the expensive divergent path).
        b.mul(c, c, b.f(0.5f));
        b.mad(out_v, c, t, t);
        auto sharp = b.tmp(DataType::F);
        auto it = b.tmp(DataType::D);
        b.mov(it, b.d(0));
        b.loop_();
        b.mul(sharp, out_v, b.f(-0.35f));
        b.exp2(sharp, sharp);
        b.mad(out_v, sharp, b.f(0.02f), out_v);
        b.add(it, it, b.d(1));
        b.cmp(CondMod::Lt, 1, it, b.d(4));
        b.endLoop(1);
    }
    b.else_();
    b.mad(out_v, c, b.f(0.1f), t);
    b.endif_();

    b.mad(addr, b.globalId(), b.ud(4), out_buf);
    b.scatterStore(addr, out_v, DataType::F);

    Workload w;
    w.kernel = b.build();
    w.name = "srad";
    w.description = "speckle-reducing diffusion with edge branches";
    w.expectDivergent = true;
    w.globalSize = n;
    w.localSize = 64;

    const auto host_img = randomFloats(n, 111, 0.0f, 1.0f);
    const Addr dev_img = dev.uploadVector(host_img);
    const Addr dev_out = dev.allocBuffer(n * sizeof(float));
    w.args = {gpu::Arg::buffer(dev_img), gpu::Arg::buffer(dev_out),
              gpu::Arg::u32(dim)};

    w.check = [dev_out, host_img, dim, n](gpu::Device &d) {
        std::vector<float> expected(n);
        for (unsigned r = 0; r < dim; ++r) {
            for (unsigned c_i = 0; c_i < dim; ++c_i) {
                const std::uint64_t i =
                    static_cast<std::uint64_t>(r) * dim + c_i;
                const float t = host_img[i];
                double g2 = 0;
                auto acc = [&](float nv) {
                    const float diff = static_cast<float>(
                        double(nv) - double(t));
                    g2 = static_cast<float>(double(diff) * diff + g2);
                };
                if (r > 0)
                    acc(host_img[i - dim]);
                if (r < dim - 1)
                    acc(host_img[i + dim]);
                if (c_i > 0)
                    acc(host_img[i - 1]);
                if (c_i < dim - 1)
                    acc(host_img[i + 1]);
                const float denom =
                    static_cast<float>(g2 + double(1.0f));
                float c = static_cast<float>(1.0 / double(denom));
                double out;
                if (g2 > double(0.25f)) {
                    c = static_cast<float>(double(c) * double(0.5f));
                    out = static_cast<float>(double(c) * t + t);
                    for (int it = 0; it < 4; ++it) {
                        float sharp = static_cast<float>(
                            out * double(-0.35f));
                        sharp = static_cast<float>(
                            std::exp2(double(sharp)));
                        out = static_cast<float>(
                            double(sharp) * double(0.02f) + out);
                    }
                } else {
                    out = static_cast<float>(
                        double(c) * double(0.1f) + t);
                }
                expected[i] = static_cast<float>(out);
            }
        }
        return checkFloatBuffer(d, dev_out, expected, "srad", 1e-3);
    };
    return w;
}

} // namespace iwc::workloads
