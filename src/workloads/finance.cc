/**
 * @file
 * Finance and random-number workloads (Table 1's coherent,
 * extended-math-heavy set): Black-Scholes, binomial option pricing,
 * Monte Carlo Asian option pricing, and a uniform RNG kernel.
 */

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "workloads/registry.hh"

namespace iwc::workloads
{

using isa::CondMod;
using isa::DataType;
using isa::KernelBuilder;

namespace
{

std::vector<float>
randomFloats(std::uint64_t n, std::uint64_t seed, float lo, float hi)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = lo + (hi - lo) * rng.nextFloat();
    return v;
}

/** Polynomial CDF approximation used on both device and host. */
constexpr float kCnd0 = 0.4361836f;
constexpr float kCnd1 = -0.1201676f;
constexpr float kCnd2 = 0.9372980f;

} // namespace

Workload
makeBlackScholes(gpu::Device &dev, unsigned scale)
{
    const std::uint64_t n = 4096ull * scale;
    const float r = 0.02f;
    const float v = 0.30f;
    const float t = 1.0f;

    KernelBuilder b("bscholes", 16);
    auto s_buf = b.argBuffer("spot");
    auto k_buf = b.argBuffer("strike");
    auto out_buf = b.argBuffer("call");

    auto s = loadGlobal(b, s_buf, b.globalId(), DataType::F);
    auto k = loadGlobal(b, k_buf, b.globalId(), DataType::F);

    // d1 = (log(s/k) + (r + v^2/2) t) / (v sqrt(t))
    auto ratio = b.tmp(DataType::F);
    auto d1 = b.tmp(DataType::F);
    b.div(ratio, s, k);
    b.log2(d1, ratio);
    b.mul(d1, d1, b.f(0.6931472f)); // ln from log2
    b.add(d1, d1, b.f((r + 0.5f * v * v) * t));
    b.mul(d1, d1, b.f(1.0f / (v * 1.0f)));

    // CND via logistic-style polynomial in z = 1/(1+0.2316419|d1|).
    auto emitCnd = [&](isa::Reg out, isa::Reg d) {
        auto z = b.tmp(DataType::F);
        auto ad = b.tmp(DataType::F);
        auto poly = b.tmp(DataType::F);
        auto e = b.tmp(DataType::F);
        auto neg_half_d2 = b.tmp(DataType::F);
        auto neg_d = b.tmp(DataType::F);
        b.mul(neg_d, d, b.f(-1.0f));
        b.max_(ad, d, neg_d); // |d|
        b.mad(z, ad, b.f(0.2316419f), b.f(1.0f));
        b.inv(z, z);
        b.mov(poly, b.f(kCnd2));
        b.mad(poly, poly, z, b.f(kCnd1));
        b.mad(poly, poly, z, b.f(kCnd0));
        b.mul(poly, poly, z);
        b.mul(neg_half_d2, d, d);
        b.mul(neg_half_d2, neg_half_d2, b.f(-0.7213475f)); // -1/(2 ln2)
        b.exp2(e, neg_half_d2);
        b.mul(e, e, b.f(0.3989423f));
        b.mul(poly, poly, e);
        // cnd = d >= 0 ? 1 - poly : poly
        b.cmp(CondMod::Ge, 0, d, b.f(0.0f));
        auto one_minus = b.tmp(DataType::F);
        b.mov(one_minus, b.f(1.0f));
        b.sub(one_minus, one_minus, poly);
        b.sel(0, out, one_minus, poly);
    };

    auto d2 = b.tmp(DataType::F);
    b.sub(d2, d1, b.f(v * 1.0f));
    auto nd1 = b.tmp(DataType::F);
    auto nd2 = b.tmp(DataType::F);
    emitCnd(nd1, d1);
    emitCnd(nd2, d2);

    // call = s*nd1 - k*exp(-rt)*nd2
    const float disc_factor =
        static_cast<float>(std::exp(-double(r) * t));
    auto call = b.tmp(DataType::F);
    auto kd = b.tmp(DataType::F);
    b.mul(call, s, nd1);
    b.mul(kd, k, b.f(disc_factor));
    b.mul(kd, kd, nd2);
    b.sub(call, call, kd);
    storeGlobal(b, out_buf, b.globalId(), call, DataType::F);

    Workload w;
    w.kernel = b.build();
    w.name = "bscholes";
    w.description = "Black-Scholes call pricing";
    w.expectDivergent = false;
    w.globalSize = n;
    w.localSize = 64;

    const auto host_s = randomFloats(n, 121, 10.0f, 100.0f);
    const auto host_k = randomFloats(n, 122, 10.0f, 100.0f);
    const Addr dev_s = dev.uploadVector(host_s);
    const Addr dev_k = dev.uploadVector(host_k);
    const Addr dev_o = dev.allocBuffer(n * sizeof(float));
    w.args = {gpu::Arg::buffer(dev_s), gpu::Arg::buffer(dev_k),
              gpu::Arg::buffer(dev_o)};

    const float disc = static_cast<float>(std::exp(-double(r) * t));
    w.check = [dev_o, host_s, host_k, n, r, v, t, disc](gpu::Device &d) {
        auto cnd = [](float dd) {
            const float neg = static_cast<float>(double(dd) * -1.0f);
            const float ad = std::max(dd, neg);
            float z = static_cast<float>(
                double(ad) * double(0.2316419f) + double(1.0f));
            z = static_cast<float>(1.0 / double(z));
            float poly = kCnd2;
            poly = static_cast<float>(
                double(poly) * z + double(kCnd1));
            poly = static_cast<float>(
                double(poly) * z + double(kCnd0));
            poly = static_cast<float>(double(poly) * z);
            float nh = static_cast<float>(double(dd) * dd);
            nh = static_cast<float>(
                double(nh) * double(-0.7213475f));
            float e = static_cast<float>(std::exp2(double(nh)));
            e = static_cast<float>(double(e) * double(0.3989423f));
            poly = static_cast<float>(double(poly) * e);
            const float one_minus =
                static_cast<float>(double(1.0f) - poly);
            return dd >= 0.0f ? one_minus : poly;
        };
        std::vector<float> expected(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            const float ratio = static_cast<float>(
                double(host_s[i]) / double(host_k[i]));
            float d1 =
                static_cast<float>(std::log2(double(ratio)));
            d1 = static_cast<float>(
                double(d1) * double(0.6931472f));
            d1 = static_cast<float>(
                double(d1) + double((r + 0.5f * v * v) * t));
            d1 = static_cast<float>(
                double(d1) * double(1.0f / (v * 1.0f)));
            const float d2 =
                static_cast<float>(double(d1) - double(v * 1.0f));
            float call = static_cast<float>(
                double(host_s[i]) * double(cnd(d1)));
            float kd = static_cast<float>(
                double(host_k[i]) * double(disc));
            kd = static_cast<float>(double(kd) * double(cnd(d2)));
            expected[i] = static_cast<float>(double(call) - kd);
        }
        return checkFloatBuffer(d, dev_o, expected, "bscholes", 2e-3);
    };
    return w;
}

Workload
makeBinomialOptions(gpu::Device &dev, unsigned scale)
{
    const std::uint64_t n = 1024ull * scale;
    const unsigned steps = 16;

    KernelBuilder b("bop", 16);
    auto s_buf = b.argBuffer("spot");
    auto out_buf = b.argBuffer("price");

    auto s = loadGlobal(b, s_buf, b.globalId(), DataType::F);
    // Iterative lattice collapse with fixed up/down factors; the loop
    // trip count is uniform, keeping the kernel coherent.
    auto v = b.tmp(DataType::F);
    auto i = b.tmp(DataType::D);
    b.mov(v, s);
    b.mov(i, b.d(0));
    b.loop_();
    auto up = b.tmp(DataType::F);
    auto down = b.tmp(DataType::F);
    b.mul(up, v, b.f(1.05f));
    b.mul(down, v, b.f(0.96f));
    b.add(v, up, down);
    b.mul(v, v, b.f(0.4975f)); // discounted expectation
    b.add(i, i, b.d(1));
    b.cmp(CondMod::Lt, 1, i, b.d(steps));
    b.endLoop(1);

    storeGlobal(b, out_buf, b.globalId(), v, DataType::F);

    Workload w;
    w.kernel = b.build();
    w.name = "bop";
    w.description = "binomial option lattice collapse";
    w.expectDivergent = false;
    w.globalSize = n;
    w.localSize = 64;

    const auto host_s = randomFloats(n, 131, 10.0f, 100.0f);
    const Addr dev_s = dev.uploadVector(host_s);
    const Addr dev_o = dev.allocBuffer(n * sizeof(float));
    w.args = {gpu::Arg::buffer(dev_s), gpu::Arg::buffer(dev_o)};

    w.check = [dev_o, host_s, n, steps](gpu::Device &d) {
        std::vector<float> expected(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            double v = host_s[i];
            for (unsigned k = 0; k < steps; ++k) {
                const float up =
                    static_cast<float>(v * double(1.05f));
                const float down =
                    static_cast<float>(v * double(0.96f));
                v = static_cast<float>(double(up) + down);
                v = static_cast<float>(v * double(0.4975f));
            }
            expected[i] = static_cast<float>(v);
        }
        return checkFloatBuffer(d, dev_o, expected, "bop", 1e-3);
    };
    return w;
}

Workload
makeMonteCarloAsian(gpu::Device &dev, unsigned scale)
{
    const std::uint64_t n = 1024ull * scale;
    const unsigned steps = 12;
    const float strike = 1.05f;

    KernelBuilder b("mca", 16);
    auto out_buf = b.argBuffer("payoff");

    // LCG-driven price path per work item; payoff via max (no branch),
    // but deep-in/out-of-the-money paths stop accumulating early
    // (break), which adds loop divergence.
    auto state = b.tmp(DataType::UD);
    auto price = b.tmp(DataType::F);
    auto avg = b.tmp(DataType::F);
    auto i = b.tmp(DataType::D);
    auto u = b.tmp(DataType::F);
    auto h = b.tmp(DataType::UD);
    b.mad(state, b.globalId(), b.ud(2654435761u), b.ud(12345u));
    b.mov(price, b.f(1.0f));
    b.mov(avg, b.f(0.0f));
    b.mov(i, b.d(0));

    b.loop_();
    b.mul(state, state, b.ud(1664525u));
    b.add(state, state, b.ud(1013904223u));
    b.shr(h, state, b.ud(16));
    b.and_(h, h, b.ud(0x3ff));
    b.mov(u, h);
    b.mad(u, u, b.f(0.0002f), b.f(0.9f)); // step factor ~ [0.9, 1.1]
    b.mul(price, price, u);
    b.add(avg, avg, price);
    // Knock-out: paths that collapse stop early (divergence).
    b.cmp(CondMod::Lt, 0, price, b.f(0.6f));
    b.breakIf(0);
    b.add(i, i, b.d(1));
    b.cmp(CondMod::Lt, 1, i, b.d(steps));
    b.endLoop(1);

    auto payoff = b.tmp(DataType::F);
    b.mul(avg, avg, b.f(1.0f / steps));
    b.sub(payoff, avg, b.f(strike));
    b.max_(payoff, payoff, b.f(0.0f));
    storeGlobal(b, out_buf, b.globalId(), payoff, DataType::F);

    Workload w;
    w.kernel = b.build();
    w.name = "mca";
    w.description = "Monte Carlo Asian option with knock-out";
    w.expectDivergent = false; // knock-outs are rare at these params
    w.globalSize = n;
    w.localSize = 64;

    const Addr dev_o = dev.allocBuffer(n * sizeof(float));
    w.args = {gpu::Arg::buffer(dev_o)};

    w.check = [dev_o, n, steps, strike](gpu::Device &d) {
        std::vector<float> expected(n);
        for (std::uint64_t wi = 0; wi < n; ++wi) {
            std::uint32_t state = static_cast<std::uint32_t>(
                wi * 2654435761u + 12345u);
            double price = 1.0f, avg = 0.0f;
            for (unsigned k = 0; k < steps; ++k) {
                state = state * 1664525u + 1013904223u;
                const std::uint32_t h = (state >> 16) & 0x3ff;
                float u = static_cast<float>(h);
                u = static_cast<float>(
                    double(u) * double(0.0002f) + double(0.9f));
                price = static_cast<float>(price * double(u));
                avg = static_cast<float>(avg + price);
                if (price < double(0.6f))
                    break;
            }
            avg = static_cast<float>(
                avg * double(1.0f / steps));
            float payoff =
                static_cast<float>(avg - double(strike));
            payoff = std::max(payoff, 0.0f);
            expected[wi] = payoff;
        }
        return checkFloatBuffer(d, dev_o, expected, "mca", 1e-3);
    };
    return w;
}

Workload
makeUrng(gpu::Device &dev, unsigned scale)
{
    const std::uint64_t n = 4096ull * scale;
    const unsigned rounds = 8;

    KernelBuilder b("urng", 16);
    auto out_buf = b.argBuffer("out");

    auto state = b.tmp(DataType::UD);
    auto i = b.tmp(DataType::D);
    b.mad(state, b.globalId(), b.ud(747796405u), b.ud(2891336453u));
    b.mov(i, b.d(0));
    b.loop_();
    b.mul(state, state, b.ud(1664525u));
    b.add(state, state, b.ud(1013904223u));
    auto x = b.tmp(DataType::UD);
    b.shr(x, state, b.ud(13));
    b.xor_(state, state, x);
    b.add(i, i, b.d(1));
    b.cmp(CondMod::Lt, 1, i, b.d(rounds));
    b.endLoop(1);

    auto out_v = b.tmp(DataType::D);
    b.mov(out_v, state);
    storeGlobal(b, out_buf, b.globalId(), out_v, DataType::D);

    Workload w;
    w.kernel = b.build();
    w.name = "urng";
    w.description = "uniform random number generation (LCG + xorshift)";
    w.expectDivergent = false;
    w.globalSize = n;
    w.localSize = 64;

    const Addr dev_o = dev.allocBuffer(n * sizeof(std::int32_t));
    w.args = {gpu::Arg::buffer(dev_o)};

    w.check = [dev_o, n, rounds](gpu::Device &d) {
        std::vector<std::int32_t> expected(n);
        for (std::uint64_t wi = 0; wi < n; ++wi) {
            std::uint32_t state = static_cast<std::uint32_t>(
                wi * 747796405u + 2891336453u);
            for (unsigned k = 0; k < rounds; ++k) {
                state = state * 1664525u + 1013904223u;
                state ^= state >> 13;
            }
            expected[wi] = static_cast<std::int32_t>(state);
        }
        return checkIntBuffer(d, dev_o, expected, "urng");
    };
    return w;
}

} // namespace iwc::workloads
