/**
 * @file
 * Ray-tracing workloads: primary-ray and ambient-occlusion kernels
 * over procedural sphere scenes, standing in for the paper's in-house
 * ray tracer and its conference/alien/bulldozer/windmill scenes
 * (Figure 11). AO kernels exist in SIMD8 and SIMD16 builds, matching
 * the paper's RT-AO-*8 / RT-AO-*16 variants.
 *
 * The host-side reference mirrors the kernel operation-for-operation
 * (every mul/mad rounds to float exactly as the EU does), so branches
 * resolve identically and results compare exactly.
 */

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "workloads/registry.hh"

namespace iwc::workloads
{

using isa::CondMod;
using isa::DataType;
using isa::KernelBuilder;

namespace
{

constexpr unsigned kImageDim = 48;
constexpr unsigned kAoRays = 6;
constexpr unsigned kAoSteps = 1; ///< sphere-walk stride per AO ray

/** Float ops mirroring the interpreter's round-to-float behaviour. */
float
mulf(float a, float b)
{
    return static_cast<float>(double(a) * double(b));
}

float
madf(float a, float b, float c)
{
    return static_cast<float>(double(a) * double(b) + double(c));
}

float
addf(float a, float b)
{
    return static_cast<float>(double(a) + double(b));
}

float
subf(float a, float b)
{
    return static_cast<float>(double(a) - double(b));
}

float
sqrtf_(float a)
{
    return static_cast<float>(std::sqrt(double(a)));
}

float
invf(float a)
{
    return static_cast<float>(1.0 / double(a));
}

struct Scene
{
    unsigned numSpheres;
    std::vector<float> data; ///< cx, cy, cz, r per sphere
};

/** Procedural scenes with distinct density/coherence signatures. */
Scene
makeScene(const std::string &name)
{
    Scene scene;
    if (name == "alien") {
        // Clustered around the view axis: high, coherent hit rates.
        scene.numSpheres = 24;
        Rng rng(301);
        for (unsigned s = 0; s < scene.numSpheres; ++s) {
            scene.data.push_back(-0.8f + 1.6f * rng.nextFloat());
            scene.data.push_back(-0.8f + 1.6f * rng.nextFloat());
            scene.data.push_back(2.0f + 2.0f * rng.nextFloat());
            scene.data.push_back(0.15f + 0.25f * rng.nextFloat());
        }
    } else if (name == "bulldozer") {
        // A broad horizontal band: stripes of hits and misses.
        scene.numSpheres = 32;
        Rng rng(302);
        for (unsigned s = 0; s < scene.numSpheres; ++s) {
            scene.data.push_back(-2.0f + 4.0f * rng.nextFloat());
            scene.data.push_back(-0.3f + 0.6f * rng.nextFloat());
            scene.data.push_back(1.5f + 3.0f * rng.nextFloat());
            scene.data.push_back(0.1f + 0.2f * rng.nextFloat());
        }
    } else if (name == "windmill") {
        // Sparse, spread out: mostly misses with incoherent hits.
        scene.numSpheres = 16;
        Rng rng(303);
        for (unsigned s = 0; s < scene.numSpheres; ++s) {
            scene.data.push_back(-2.5f + 5.0f * rng.nextFloat());
            scene.data.push_back(-2.5f + 5.0f * rng.nextFloat());
            scene.data.push_back(1.0f + 4.0f * rng.nextFloat());
            scene.data.push_back(0.1f + 0.15f * rng.nextFloat());
        }
    } else {
        fatal("unknown ray tracing scene '%s'", name.c_str());
    }
    return scene;
}

/** Any-hit threshold: rays stop traversing once a hit is this close
 *  (per-lane early exit -> the traversal loop itself diverges, as a
 *  real acceleration-structure walk would). */
constexpr float kCloseEnough = 2.5f;

/** Host mirror of the primary-ray traversal. Returns (tbest, hit). */
std::pair<float, int>
hostTrace(const Scene &scene, float dx, float dy)
{
    float tbest = 1e30f;
    int hit = -1;
    for (unsigned s = 0; s < scene.numSpheres; ++s) {
        const float cx = scene.data[s * 4];
        const float cy = scene.data[s * 4 + 1];
        const float cz = scene.data[s * 4 + 2];
        const float r = scene.data[s * 4 + 3];
        float bq = mulf(dx, cx);
        bq = madf(dy, cy, bq);
        bq = madf(1.0f, cz, bq);
        float aq = mulf(dx, dx);
        aq = madf(dy, dy, aq);
        aq = addf(aq, 1.0f);
        float cc = mulf(cx, cx);
        cc = madf(cy, cy, cc);
        cc = madf(cz, cz, cc);
        float cq = subf(cc, mulf(r, r));
        const float disc = subf(mulf(bq, bq), mulf(aq, cq));
        if (disc > 0.0f) {
            const float sq = sqrtf_(disc);
            const float t = mulf(subf(bq, sq), invf(aq));
            if (t > 0.001f && t < tbest) {
                tbest = t;
                hit = static_cast<int>(s);
            }
        }
        if (tbest < kCloseEnough)
            break;
    }
    return {tbest, hit};
}

/** Emits the sphere-intersection loop shared by both kernels. */
struct TraceRegs
{
    isa::Reg tbest;
    isa::Reg hit;
};

TraceRegs
emitPrimaryTrace(KernelBuilder &b, const isa::Operand &scene_buf,
                 unsigned num_spheres, isa::Reg dx, isa::Reg dy)
{
    auto tbest = b.tmp(DataType::F);
    auto hit = b.tmp(DataType::D);
    auto s = b.tmp(DataType::D);
    auto addr = b.tmp(DataType::UD);
    auto cx = b.tmp(DataType::F);
    auto cy = b.tmp(DataType::F);
    auto cz = b.tmp(DataType::F);
    auto r = b.tmp(DataType::F);
    auto bq = b.tmp(DataType::F);
    auto aq = b.tmp(DataType::F);
    auto cc = b.tmp(DataType::F);
    auto cq = b.tmp(DataType::F);
    auto disc = b.tmp(DataType::F);
    auto sq = b.tmp(DataType::F);
    auto t = b.tmp(DataType::F);
    auto inv_aq = b.tmp(DataType::F);

    b.mov(tbest, b.f(1e30f));
    b.mov(hit, b.d(-1));
    b.mov(s, b.d(0));

    b.loop_();
    {
        b.mul(addr, s, b.ud(16));
        b.add(addr, addr, scene_buf);
        b.gatherLoad(cx, addr, DataType::F);
        b.add(addr, addr, b.ud(4));
        b.gatherLoad(cy, addr, DataType::F);
        b.add(addr, addr, b.ud(4));
        b.gatherLoad(cz, addr, DataType::F);
        b.add(addr, addr, b.ud(4));
        b.gatherLoad(r, addr, DataType::F);

        b.mul(bq, dx, cx);
        b.mad(bq, dy, cy, bq);
        b.mad(bq, b.f(1.0f), cz, bq);
        b.mul(aq, dx, dx);
        b.mad(aq, dy, dy, aq);
        b.add(aq, aq, b.f(1.0f));
        b.mul(cc, cx, cx);
        b.mad(cc, cy, cy, cc);
        b.mad(cc, cz, cz, cc);
        auto r2 = b.tmp(DataType::F);
        b.mul(r2, r, r);
        b.sub(cq, cc, r2);
        auto aq_cq = b.tmp(DataType::F);
        b.mul(aq_cq, aq, cq);
        b.mul(disc, bq, bq);
        b.sub(disc, disc, aq_cq);

        b.cmp(CondMod::Gt, 0, disc, b.f(0.0f));
        b.if_(0);
        {
            b.sqrt(sq, disc);
            b.sub(t, bq, sq);
            b.inv(inv_aq, aq);
            b.mul(t, t, inv_aq);
            b.cmp(CondMod::Gt, 0, t, b.f(0.001f));
            b.if_(0);
            b.cmp(CondMod::Lt, 0, t, tbest);
            b.if_(0);
            b.mov(tbest, t);
            b.mov(hit, s);
            b.endif_();
            b.endif_();
        }
        b.endif_();

        // Any-hit early exit: satisfied lanes leave the traversal.
        b.cmp(CondMod::Gt, 0, tbest, b.f(kCloseEnough));
        b.breakIf(0, true);

        b.add(s, s, b.d(1));
        b.cmp(CondMod::Lt, 1, s,
              b.d(static_cast<std::int32_t>(num_spheres)));
    }
    b.endLoop(1);
    return {tbest, hit};
}

/** Pixel -> ray direction (matches hostRayDir below). */
void
emitRayDir(KernelBuilder &b, const isa::Operand &dim_arg, isa::Reg dx,
           isa::Reg dy)
{
    auto row = b.tmp(DataType::UD);
    auto col = b.tmp(DataType::UD);
    auto tmp = b.tmp(DataType::UD);
    b.div(row, b.globalId(), dim_arg);
    b.mul(tmp, row, dim_arg);
    b.sub(col, b.globalId(), tmp);

    auto dim_f = b.tmp(DataType::F);
    auto inv_dim = b.tmp(DataType::F);
    b.mov(dim_f, dim_arg);
    b.inv(inv_dim, dim_f);
    b.mov(dx, col);
    b.mul(dx, dx, inv_dim);
    b.mad(dx, dx, b.f(1.6f), b.f(-0.8f));
    b.mov(dy, row);
    b.mul(dy, dy, inv_dim);
    b.mad(dy, dy, b.f(1.6f), b.f(-0.8f));
}

std::pair<float, float>
hostRayDir(unsigned dim, unsigned row, unsigned col)
{
    const float inv_dim = invf(static_cast<float>(dim));
    float dx = mulf(static_cast<float>(col), inv_dim);
    dx = madf(dx, 1.6f, -0.8f);
    float dy = mulf(static_cast<float>(row), inv_dim);
    dy = madf(dy, 1.6f, -0.8f);
    return {dx, dy};
}

} // namespace

Workload
makeRayTracePrimary(gpu::Device &dev, unsigned scale,
                    const std::string &scene_name)
{
    const unsigned dim = kImageDim * std::min(scale, 3u);
    const std::uint64_t n = static_cast<std::uint64_t>(dim) * dim;
    const Scene scene = makeScene(scene_name);

    KernelBuilder b("rt_pr_" + scene_name, 16);
    auto scene_buf = b.argBuffer("scene");
    auto out_buf = b.argBuffer("out");
    auto dim_arg = b.argU("dim");

    auto dx = b.tmp(DataType::F);
    auto dy = b.tmp(DataType::F);
    emitRayDir(b, dim_arg, dx, dy);

    const TraceRegs trace =
        emitPrimaryTrace(b, scene_buf, scene.numSpheres, dx, dy);

    // Shade: hits run an iterative tone-map (the expensive divergent
    // path); misses are flat background.
    auto color = b.tmp(DataType::F);
    b.cmp(CondMod::Ge, 0, trace.hit, b.d(0));
    b.if_(0);
    {
        auto denom = b.tmp(DataType::F);
        b.add(denom, trace.tbest, b.f(1.0f));
        b.inv(color, denom);
        auto gloss = b.tmp(DataType::F);
        b.sqrt(gloss, color);
        b.mad(color, gloss, b.f(0.3f), color);
        auto it = b.tmp(DataType::D);
        b.mov(it, b.d(0));
        b.loop_();
        b.mad(color, color, b.f(0.92f), b.f(0.03f));
        b.sqrt(gloss, color);
        b.mad(color, gloss, b.f(0.05f), color);
        b.add(it, it, b.d(1));
        b.cmp(CondMod::Lt, 1, it, b.d(10));
        b.endLoop(1);
    }
    b.else_();
    b.mov(color, b.f(0.1f));
    b.endif_();

    auto addr = b.tmp(DataType::UD);
    b.mad(addr, b.globalId(), b.ud(4), out_buf);
    b.scatterStore(addr, color, DataType::F);

    Workload w;
    w.kernel = b.build();
    w.name = "rt_pr_" + scene_name;
    w.description = "primary rays over the " + scene_name + " scene";
    w.expectDivergent = true;
    w.globalSize = n;
    w.localSize = 64;

    const Addr dev_scene = dev.uploadVector(scene.data);
    const Addr dev_out = dev.allocBuffer(n * sizeof(float));
    w.args = {gpu::Arg::buffer(dev_scene), gpu::Arg::buffer(dev_out),
              gpu::Arg::u32(dim)};

    w.check = [dev_out, scene, dim, n](gpu::Device &d) {
        std::vector<float> expected(n);
        for (unsigned row = 0; row < dim; ++row) {
            for (unsigned col = 0; col < dim; ++col) {
                const auto [dx, dy] = hostRayDir(dim, row, col);
                const auto [tbest, hit] = hostTrace(scene, dx, dy);
                float color;
                if (hit >= 0) {
                    color = invf(addf(tbest, 1.0f));
                    float gloss = sqrtf_(color);
                    color = madf(gloss, 0.3f, color);
                    for (int it = 0; it < 10; ++it) {
                        color = madf(color, 0.92f, 0.03f);
                        gloss = sqrtf_(color);
                        color = madf(gloss, 0.05f, color);
                    }
                } else {
                    color = 0.1f;
                }
                expected[static_cast<std::size_t>(row) * dim + col] =
                    color;
            }
        }
        return checkFloatBuffer(d, dev_out, expected, "rt_pr", 1e-3);
    };
    return w;
}

Workload
makeRayTraceAo(gpu::Device &dev, unsigned scale,
               const std::string &scene_name, unsigned simd_width)
{
    const unsigned dim = kImageDim * std::min(scale, 3u);
    const std::uint64_t n = static_cast<std::uint64_t>(dim) * dim;
    const Scene scene = makeScene(scene_name);

    // Per-ray jitter texture: scattered per-channel gathers make the
    // AO walk data-cluster hungry, like real RT shading fetches. The
    // table is sized to live in L3 so bandwidth, not DRAM latency,
    // is what the walk leans on (the paper's Figure 11 regime).
    constexpr unsigned kNoiseElems = 8 * 1024;
    Rng noise_rng(777);
    std::vector<float> noise(kNoiseElems);
    for (auto &v : noise)
        v = 0.8f + 0.4f * noise_rng.nextFloat();

    KernelBuilder b("rt_ao_" + scene_name + std::to_string(simd_width),
                    simd_width);
    auto scene_buf = b.argBuffer("scene");
    auto out_buf = b.argBuffer("out");
    auto noise_buf = b.argBuffer("noise");
    auto dim_arg = b.argU("dim");

    auto dx = b.tmp(DataType::F);
    auto dy = b.tmp(DataType::F);
    emitRayDir(b, dim_arg, dx, dy);

    const TraceRegs trace =
        emitPrimaryTrace(b, scene_buf, scene.numSpheres, dx, dy);

    auto occl = b.tmp(DataType::F);
    b.mov(occl, b.f(0.0f));

    // Ambient occlusion: only hit pixels shoot AO rays (branch), and
    // each AO ray's sphere walk breaks on the first occluder (loop
    // divergence with incoherent trip counts).
    b.cmp(CondMod::Ge, 0, trace.hit, b.d(0));
    b.if_(0);
    {
        auto k = b.tmp(DataType::D);
        auto h = b.tmp(DataType::UD);
        auto adx = b.tmp(DataType::F);
        auto ady = b.tmp(DataType::F);
        auto s = b.tmp(DataType::D);
        auto addr = b.tmp(DataType::UD);
        auto cx = b.tmp(DataType::F);
        auto cy = b.tmp(DataType::F);
        auto r = b.tmp(DataType::F);
        auto ddx = b.tmp(DataType::F);
        auto ddy = b.tmp(DataType::F);
        auto d2 = b.tmp(DataType::F);
        auto r2 = b.tmp(DataType::F);
        auto blocked = b.tmp(DataType::F);
        b.mov(k, b.d(0));

        b.loop_();
        {
            // Pseudo-random AO direction from (gid, k).
            b.mul(h, b.globalId(), b.ud(2654435761u));
            auto kh = b.tmp(DataType::UD);
            b.mul(kh, k, b.ud(40503u));
            b.add(h, h, kh);
            auto hx = b.tmp(DataType::UD);
            b.and_(hx, h, b.ud(0xff));
            b.mov(adx, hx);
            b.mad(adx, adx, b.f(1.0f / 128.0f), b.f(-1.0f));
            b.shr(hx, h, b.ud(8));
            b.and_(hx, hx, b.ud(0xff));
            b.mov(ady, hx);
            b.mad(ady, ady, b.f(1.0f / 128.0f), b.f(-1.0f));

            b.mov(blocked, b.f(0.0f));
            b.mov(s, b.d(0));
            b.loop_();
            {
                // Cheap occlusion proxy: the AO direction points into
                // sphere s's lateral disc.
                b.mul(addr, s, b.ud(16));
                b.add(addr, addr, scene_buf);
                b.gatherLoad(cx, addr, DataType::F);
                b.add(addr, addr, b.ud(4));
                b.gatherLoad(cy, addr, DataType::F);
                b.add(addr, addr, b.ud(8)); // skip cz to the radius
                b.gatherLoad(r, addr, DataType::F);
                b.sub(ddx, cx, adx);
                b.sub(ddy, cy, ady);
                b.mul(d2, ddx, ddx);
                b.mad(d2, ddy, ddy, d2);
                b.mul(r2, r, r);
                b.mul(r2, r2, b.f(4.0f));
                // Jittered radius from the per-channel noise texture.
                auto nidx = b.tmp(DataType::UD);
                auto naddr = b.tmp(DataType::UD);
                auto jit = b.tmp(DataType::F);
                b.mul(nidx, s, b.ud(197u));
                b.add(nidx, nidx, h);
                b.and_(nidx, nidx, b.ud(kNoiseElems - 1));
                b.mad(naddr, nidx, b.ud(4), noise_buf);
                b.gatherLoad(jit, naddr, DataType::F);
                b.mul(r2, r2, jit);
                b.cmp(CondMod::Lt, 0, d2, r2);
                b.if_(0);
                b.mov(blocked, b.f(1.0f));
                b.endif_();
                b.breakIf(0); // first occluder terminates the walk
                b.add(s, s, b.d(static_cast<std::int32_t>(kAoSteps)));
                b.cmp(CondMod::Lt, 1, s,
                      b.d(static_cast<std::int32_t>(
                          scene.numSpheres)));
            }
            b.endLoop(1);
            b.add(occl, occl, blocked);

            b.add(k, k, b.d(1));
            b.cmp(CondMod::Lt, 1, k,
                  b.d(static_cast<std::int32_t>(kAoRays)));
        }
        b.endLoop(1);
    }
    b.endif_();

    auto color = b.tmp(DataType::F);
    b.mul(color, occl, b.f(-1.0f / kAoRays));
    b.add(color, color, b.f(1.0f));

    auto addr2 = b.tmp(DataType::UD);
    b.mad(addr2, b.globalId(), b.ud(4), out_buf);
    b.scatterStore(addr2, color, DataType::F);

    Workload w;
    w.kernel = b.build();
    w.name = w.kernel.name();
    w.description = "ambient occlusion over the " + scene_name +
        " scene (SIMD" + std::to_string(simd_width) + ")";
    w.expectDivergent = true;
    w.globalSize = n;
    w.localSize = 64;

    const Addr dev_scene = dev.uploadVector(scene.data);
    const Addr dev_out = dev.allocBuffer(n * sizeof(float));
    const Addr dev_noise = dev.uploadVector(noise);
    w.args = {gpu::Arg::buffer(dev_scene), gpu::Arg::buffer(dev_out),
              gpu::Arg::buffer(dev_noise), gpu::Arg::u32(dim)};

    w.check = [dev_out, scene, dim, n, noise](gpu::Device &d) {
        std::vector<float> expected(n);
        for (unsigned row = 0; row < dim; ++row) {
            for (unsigned col = 0; col < dim; ++col) {
                const std::uint64_t gid =
                    static_cast<std::uint64_t>(row) * dim + col;
                const auto [dx, dy] = hostRayDir(dim, row, col);
                const auto [tbest, hit] = hostTrace(scene, dx, dy);
                (void)tbest;
                float occl = 0.0f;
                if (hit >= 0) {
                    for (unsigned k = 0; k < kAoRays; ++k) {
                        const std::uint32_t h =
                            static_cast<std::uint32_t>(gid) *
                                2654435761u +
                            k * 40503u;
                        float adx = static_cast<float>(h & 0xff);
                        adx = madf(adx, 1.0f / 128.0f, -1.0f);
                        float ady =
                            static_cast<float>((h >> 8) & 0xff);
                        ady = madf(ady, 1.0f / 128.0f, -1.0f);
                        float blocked = 0.0f;
                        for (unsigned s = 0; s < scene.numSpheres;
                             s += kAoSteps) {
                            const float ddx =
                                subf(scene.data[s * 4], adx);
                            const float ddy =
                                subf(scene.data[s * 4 + 1], ady);
                            float d2 = mulf(ddx, ddx);
                            d2 = madf(ddy, ddy, d2);
                            float r2 = mulf(scene.data[s * 4 + 3],
                                            scene.data[s * 4 + 3]);
                            r2 = mulf(r2, 4.0f);
                            const std::uint32_t nidx =
                                (s * 197u + h) & (8u * 1024u - 1);
                            r2 = mulf(r2, noise[nidx]);
                            if (d2 < r2) {
                                blocked = 1.0f;
                                break;
                            }
                        }
                        occl = addf(occl, blocked);
                    }
                }
                float color = mulf(occl, -1.0f / kAoRays);
                color = addf(color, 1.0f);
                expected[gid] = color;
            }
        }
        return checkFloatBuffer(d, dev_out, expected, "rt_ao", 1e-3);
    };
    return w;
}

Workload
makeRtPrimaryAlien(gpu::Device &dev, unsigned scale)
{
    return makeRayTracePrimary(dev, scale, "alien");
}

Workload
makeRtPrimaryBulldozer(gpu::Device &dev, unsigned scale)
{
    return makeRayTracePrimary(dev, scale, "bulldozer");
}

Workload
makeRtPrimaryWindmill(gpu::Device &dev, unsigned scale)
{
    return makeRayTracePrimary(dev, scale, "windmill");
}

Workload
makeRtAoAlien8(gpu::Device &dev, unsigned scale)
{
    return makeRayTraceAo(dev, scale, "alien", 8);
}

Workload
makeRtAoBulldozer8(gpu::Device &dev, unsigned scale)
{
    return makeRayTraceAo(dev, scale, "bulldozer", 8);
}

Workload
makeRtAoWindmill8(gpu::Device &dev, unsigned scale)
{
    return makeRayTraceAo(dev, scale, "windmill", 8);
}

Workload
makeRtAoAlien16(gpu::Device &dev, unsigned scale)
{
    return makeRayTraceAo(dev, scale, "alien", 16);
}

Workload
makeRtAoBulldozer16(gpu::Device &dev, unsigned scale)
{
    return makeRayTraceAo(dev, scale, "bulldozer", 16);
}

Workload
makeRtAoWindmill16(gpu::Device &dev, unsigned scale)
{
    return makeRayTraceAo(dev, scale, "windmill", 16);
}

} // namespace iwc::workloads
