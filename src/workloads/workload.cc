#include "workloads/workload.hh"

#include <cmath>

#include "common/logging.hh"

namespace iwc::workloads
{

bool
approxEqual(double expected, double actual, double tol)
{
    const double diff = std::fabs(expected - actual);
    const double scale = std::max(std::fabs(expected), std::fabs(actual));
    return diff <= tol * std::max(scale, 1.0);
}

bool
checkFloatBuffer(gpu::Device &dev, Addr base,
                 const std::vector<float> &expected, const char *what,
                 double tol)
{
    const auto actual =
        dev.downloadVector<float>(base, expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        if (!approxEqual(expected[i], actual[i], tol)) {
            warn("%s: mismatch at %zu: expected %g, got %g", what, i,
                 static_cast<double>(expected[i]),
                 static_cast<double>(actual[i]));
            return false;
        }
    }
    return true;
}

bool
checkIntBuffer(gpu::Device &dev, Addr base,
               const std::vector<std::int32_t> &expected, const char *what)
{
    const auto actual =
        dev.downloadVector<std::int32_t>(base, expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        if (expected[i] != actual[i]) {
            warn("%s: mismatch at %zu: expected %d, got %d", what, i,
                 expected[i], actual[i]);
            return false;
        }
    }
    return true;
}

isa::Reg
loadGlobal(isa::KernelBuilder &b, const isa::Operand &buf,
           const isa::Operand &idx, isa::DataType type)
{
    const auto addr = b.tmp(isa::DataType::UD);
    b.mad(addr, idx, isa::KernelBuilder::ud(isa::dataTypeSize(type)),
          buf);
    const auto value = b.tmp(type);
    b.gatherLoad(value, addr, type);
    return value;
}

void
storeGlobal(isa::KernelBuilder &b, const isa::Operand &buf,
            const isa::Operand &idx, const isa::Operand &value,
            isa::DataType type)
{
    const auto addr = b.tmp(isa::DataType::UD);
    b.mad(addr, idx, isa::KernelBuilder::ud(isa::dataTypeSize(type)),
          buf);
    b.scatterStore(addr, value, type);
}

} // namespace iwc::workloads
