/**
 * @file
 * Image and media workloads: Sobel edge filter (border branches), box
 * filter (coherent window loop), Haar DWT (coherent), and a
 * Mandelbrot escape-time kernel (the heavily divergent stand-in for
 * RightWare's mandelbulb workload in execution-driven form).
 */

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "workloads/registry.hh"

namespace iwc::workloads
{

using isa::CondMod;
using isa::DataType;
using isa::KernelBuilder;

namespace
{

std::vector<float>
randomFloats(std::uint64_t n, std::uint64_t seed, float lo = 0.0f,
             float hi = 1.0f)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = lo + (hi - lo) * rng.nextFloat();
    return v;
}

} // namespace

Workload
makeSobel(gpu::Device &dev, unsigned scale)
{
    const unsigned dim = 64 * std::min(scale, 4u);
    const std::uint64_t n = static_cast<std::uint64_t>(dim) * dim;

    KernelBuilder b("sobel", 16);
    auto img_buf = b.argBuffer("img");
    auto out_buf = b.argBuffer("out");
    auto dim_arg = b.argU("dim");

    auto row = b.tmp(DataType::UD);
    auto col = b.tmp(DataType::UD);
    auto tmp = b.tmp(DataType::UD);
    b.div(row, b.globalId(), dim_arg);
    b.mul(tmp, row, dim_arg);
    b.sub(col, b.globalId(), tmp);
    auto dim_m1 = b.tmp(DataType::UD);
    b.sub(dim_m1, dim_arg, b.ud(1));

    auto out_v = b.tmp(DataType::F);
    auto addr = b.tmp(DataType::UD);
    b.mov(out_v, b.f(0.0f));

    // Interior pixels compute the gradient; border pixels write zero
    // (the classic Sobel boundary divergence).
    b.cmp(CondMod::Gt, 0, row, b.ud(0));
    b.if_(0);
    b.cmp(CondMod::Lt, 0, row, dim_m1);
    b.if_(0);
    b.cmp(CondMod::Gt, 0, col, b.ud(0));
    b.if_(0);
    b.cmp(CondMod::Lt, 0, col, dim_m1);
    b.if_(0);
    {
        auto gx = b.tmp(DataType::F);
        auto gy = b.tmp(DataType::F);
        auto pv = b.tmp(DataType::F);
        auto idx = b.tmp(DataType::UD);
        b.mov(gx, b.f(0.0f));
        b.mov(gy, b.f(0.0f));

        // 3x3 window with standard Sobel weights.
        const int wx[3][3] = {{-1, 0, 1}, {-2, 0, 2}, {-1, 0, 1}};
        const int wy[3][3] = {{-1, -2, -1}, {0, 0, 0}, {1, 2, 1}};
        for (int dr = -1; dr <= 1; ++dr) {
            for (int dc = -1; dc <= 1; ++dc) {
                const std::int32_t off = dr * static_cast<int>(dim) + dc;
                b.add(idx, b.globalId(), b.d(off));
                b.mad(addr, idx, b.ud(4), img_buf);
                b.gatherLoad(pv, addr, DataType::F);
                if (wx[dr + 1][dc + 1] != 0)
                    b.mad(gx, pv,
                          b.f(static_cast<float>(wx[dr + 1][dc + 1])),
                          gx);
                if (wy[dr + 1][dc + 1] != 0)
                    b.mad(gy, pv,
                          b.f(static_cast<float>(wy[dr + 1][dc + 1])),
                          gy);
            }
        }
        auto mag2 = b.tmp(DataType::F);
        b.mul(mag2, gx, gx);
        b.mad(mag2, gy, gy, mag2);
        b.sqrt(out_v, mag2);
        // Saturate strong edges (data-dependent branch).
        b.cmp(CondMod::Gt, 0, out_v, b.f(1.0f));
        b.if_(0);
        b.mov(out_v, b.f(1.0f));
        b.endif_();
    }
    b.endif_();
    b.endif_();
    b.endif_();
    b.endif_();

    b.mad(addr, b.globalId(), b.ud(4), out_buf);
    b.scatterStore(addr, out_v, DataType::F);

    Workload w;
    w.kernel = b.build();
    w.name = "sobel";
    w.description = "Sobel filter with border and saturation branches";
    w.expectDivergent = false; // borders are a thin fraction
    w.globalSize = n;
    w.localSize = 64;

    const auto host_img = randomFloats(n, 171);
    const Addr dev_img = dev.uploadVector(host_img);
    const Addr dev_out = dev.allocBuffer(n * sizeof(float));
    w.args = {gpu::Arg::buffer(dev_img), gpu::Arg::buffer(dev_out),
              gpu::Arg::u32(dim)};

    w.check = [dev_out, host_img, dim, n](gpu::Device &d) {
        const int wx[3][3] = {{-1, 0, 1}, {-2, 0, 2}, {-1, 0, 1}};
        const int wy[3][3] = {{-1, -2, -1}, {0, 0, 0}, {1, 2, 1}};
        std::vector<float> expected(n, 0.0f);
        for (unsigned r = 1; r + 1 < dim; ++r) {
            for (unsigned c = 1; c + 1 < dim; ++c) {
                double gx = 0, gy = 0;
                for (int dr = -1; dr <= 1; ++dr) {
                    for (int dc = -1; dc <= 1; ++dc) {
                        const float pv =
                            host_img[(r + dr) * dim + (c + dc)];
                        if (wx[dr + 1][dc + 1])
                            gx = static_cast<float>(
                                double(pv) *
                                    double(static_cast<float>(
                                        wx[dr + 1][dc + 1])) + gx);
                        if (wy[dr + 1][dc + 1])
                            gy = static_cast<float>(
                                double(pv) *
                                    double(static_cast<float>(
                                        wy[dr + 1][dc + 1])) + gy);
                    }
                }
                double mag2 = static_cast<float>(gx * gx);
                mag2 = static_cast<float>(gy * gy + mag2);
                float mag =
                    static_cast<float>(std::sqrt(double(mag2)));
                if (mag > 1.0f)
                    mag = 1.0f;
                expected[r * dim + c] = mag;
            }
        }
        return checkFloatBuffer(d, dev_out, expected, "sobel", 1e-3);
    };
    return w;
}

Workload
makeBoxFilter(gpu::Device &dev, unsigned scale)
{
    const std::uint64_t n = 4096ull * scale;
    const unsigned radius = 4;

    KernelBuilder b("boxfilter", 16);
    auto in_buf = b.argBuffer("in");
    auto out_buf = b.argBuffer("out");
    auto n_arg = b.argU("n");

    // 1D box filter with clamped window (min/max keep it coherent).
    auto acc = b.tmp(DataType::F);
    auto k = b.tmp(DataType::D);
    auto idx = b.tmp(DataType::D);
    auto addr = b.tmp(DataType::UD);
    auto v = b.tmp(DataType::F);
    auto n_m1 = b.tmp(DataType::D);
    auto n_d = b.tmp(DataType::D);
    b.mov(n_d, n_arg);
    b.sub(n_m1, n_d, b.d(1));
    b.mov(acc, b.f(0.0f));
    b.mov(k, b.d(-static_cast<std::int32_t>(radius)));

    b.loop_();
    auto gid_d = b.tmp(DataType::D);
    b.mov(gid_d, b.globalId());
    b.add(idx, gid_d, k);
    b.max_(idx, idx, b.d(0));
    b.min_(idx, idx, n_m1);
    b.mad(addr, idx, b.ud(4), in_buf);
    b.gatherLoad(v, addr, DataType::F);
    b.add(acc, acc, v);
    b.add(k, k, b.d(1));
    b.cmp(CondMod::Le, 1, k, b.d(static_cast<std::int32_t>(radius)));
    b.endLoop(1);

    b.mul(acc, acc, b.f(1.0f / (2 * radius + 1)));
    storeGlobal(b, out_buf, b.globalId(), acc, DataType::F);

    Workload w;
    w.kernel = b.build();
    w.name = "boxfilter";
    w.description = "1D box filter with clamped window";
    w.expectDivergent = false;
    w.globalSize = n;
    w.localSize = 64;

    const auto host_in = randomFloats(n, 181);
    const Addr dev_in = dev.uploadVector(host_in);
    const Addr dev_out = dev.allocBuffer(n * sizeof(float));
    w.args = {gpu::Arg::buffer(dev_in), gpu::Arg::buffer(dev_out),
              gpu::Arg::u32(static_cast<std::uint32_t>(n))};

    w.check = [dev_out, host_in, n, radius](gpu::Device &d) {
        std::vector<float> expected(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            double acc = 0;
            for (int k = -static_cast<int>(radius);
                 k <= static_cast<int>(radius); ++k) {
                std::int64_t idx = static_cast<std::int64_t>(i) + k;
                idx = std::max<std::int64_t>(idx, 0);
                idx = std::min<std::int64_t>(
                    idx, static_cast<std::int64_t>(n) - 1);
                acc = static_cast<float>(acc + host_in[idx]);
            }
            expected[i] = static_cast<float>(
                acc * double(1.0f / (2 * radius + 1)));
        }
        return checkFloatBuffer(d, dev_out, expected, "boxfilter",
                                1e-3);
    };
    return w;
}

Workload
makeDwtHaar(gpu::Device &dev, unsigned scale)
{
    const std::uint64_t pairs = 2048ull * scale;

    KernelBuilder b("dwthaar", 16);
    auto in_buf = b.argBuffer("in");
    auto avg_buf = b.argBuffer("avg");
    auto diff_buf = b.argBuffer("diff");

    auto addr = b.tmp(DataType::UD);
    auto a = b.tmp(DataType::F);
    auto c = b.tmp(DataType::F);
    b.mul(addr, b.globalId(), b.ud(8));
    b.add(addr, addr, in_buf);
    b.gatherLoad(a, addr, DataType::F);
    b.add(addr, addr, b.ud(4));
    b.gatherLoad(c, addr, DataType::F);

    auto avg = b.tmp(DataType::F);
    auto diff = b.tmp(DataType::F);
    b.add(avg, a, c);
    b.mul(avg, avg, b.f(0.70710678f));
    b.sub(diff, a, c);
    b.mul(diff, diff, b.f(0.70710678f));
    storeGlobal(b, avg_buf, b.globalId(), avg, DataType::F);
    storeGlobal(b, diff_buf, b.globalId(), diff, DataType::F);

    Workload w;
    w.kernel = b.build();
    w.name = "dwthaar";
    w.description = "one-level Haar wavelet transform";
    w.expectDivergent = false;
    w.globalSize = pairs;
    w.localSize = 64;

    const auto host_in = randomFloats(pairs * 2, 191, -1.0f, 1.0f);
    const Addr dev_in = dev.uploadVector(host_in);
    const Addr dev_avg = dev.allocBuffer(pairs * sizeof(float));
    const Addr dev_diff = dev.allocBuffer(pairs * sizeof(float));
    w.args = {gpu::Arg::buffer(dev_in), gpu::Arg::buffer(dev_avg),
              gpu::Arg::buffer(dev_diff)};

    w.check = [dev_avg, dev_diff, host_in, pairs](gpu::Device &d) {
        std::vector<float> exp_avg(pairs), exp_diff(pairs);
        for (std::uint64_t i = 0; i < pairs; ++i) {
            const double a = host_in[i * 2];
            const double c = host_in[i * 2 + 1];
            exp_avg[i] = static_cast<float>(
                static_cast<float>(a + c) * double(0.70710678f));
            exp_diff[i] = static_cast<float>(
                static_cast<float>(a - c) * double(0.70710678f));
        }
        return checkFloatBuffer(d, dev_avg, exp_avg, "dwthaar.avg",
                                1e-3) &&
            checkFloatBuffer(d, dev_diff, exp_diff, "dwthaar.diff",
                             1e-3);
    };
    return w;
}

Workload
makeMandelbrot(gpu::Device &dev, unsigned scale)
{
    const unsigned dim = 64 * std::min(scale, 4u);
    const std::uint64_t n = static_cast<std::uint64_t>(dim) * dim;
    const unsigned max_iter = 48;

    KernelBuilder b("mandelbrot", 16);
    auto out_buf = b.argBuffer("out");
    auto dim_arg = b.argU("dim");

    auto row = b.tmp(DataType::UD);
    auto col = b.tmp(DataType::UD);
    auto tmp = b.tmp(DataType::UD);
    b.div(row, b.globalId(), dim_arg);
    b.mul(tmp, row, dim_arg);
    b.sub(col, b.globalId(), tmp);

    // Map pixel to c = (-2 + 3x, -1.5 + 3y), the classic window.
    auto cx = b.tmp(DataType::F);
    auto cy = b.tmp(DataType::F);
    auto dim_f = b.tmp(DataType::F);
    auto inv_dim = b.tmp(DataType::F);
    b.mov(dim_f, dim_arg);
    b.inv(inv_dim, dim_f);
    b.mov(cx, col);
    b.mul(cx, cx, inv_dim);
    b.mad(cx, cx, b.f(3.0f), b.f(-2.0f));
    b.mov(cy, row);
    b.mul(cy, cy, inv_dim);
    b.mad(cy, cy, b.f(3.0f), b.f(-1.5f));

    auto zx = b.tmp(DataType::F);
    auto zy = b.tmp(DataType::F);
    auto zx2 = b.tmp(DataType::F);
    auto zy2 = b.tmp(DataType::F);
    auto mag2 = b.tmp(DataType::F);
    auto iter = b.tmp(DataType::D);
    auto xy = b.tmp(DataType::F);
    b.mov(zx, b.f(0.0f));
    b.mov(zy, b.f(0.0f));
    b.mov(iter, b.d(0));

    b.loop_();
    {
        b.mul(zx2, zx, zx);
        b.mul(zy2, zy, zy);
        b.add(mag2, zx2, zy2);
        b.cmp(CondMod::Gt, 0, mag2, b.f(4.0f));
        b.breakIf(0); // escape-time divergence
        b.mul(xy, zx, zy);
        b.sub(zx, zx2, zy2);
        b.add(zx, zx, cx);
        b.mad(zy, xy, b.f(2.0f), cy);
        b.add(iter, iter, b.d(1));
        b.cmp(CondMod::Lt, 1, iter,
              b.d(static_cast<std::int32_t>(max_iter)));
    }
    b.endLoop(1);

    b.mad(tmp, b.globalId(), b.ud(4), out_buf);
    b.scatterStore(tmp, iter, DataType::D);

    Workload w;
    w.kernel = b.build();
    w.name = "mandelbrot";
    w.description = "escape-time fractal (per-pixel loop divergence)";
    w.expectDivergent = true;
    w.globalSize = n;
    w.localSize = 64;

    const Addr dev_out = dev.allocBuffer(n * sizeof(std::int32_t));
    w.args = {gpu::Arg::buffer(dev_out), gpu::Arg::u32(dim)};

    w.check = [dev_out, dim, n, max_iter](gpu::Device &d) {
        std::vector<std::int32_t> expected(n);
        for (unsigned r = 0; r < dim; ++r) {
            for (unsigned c = 0; c < dim; ++c) {
                const float inv_dim = static_cast<float>(
                    1.0 / double(static_cast<float>(dim)));
                float cx = static_cast<float>(
                    double(static_cast<float>(c)) * inv_dim);
                cx = static_cast<float>(
                    double(cx) * double(3.0f) + double(-2.0f));
                float cy = static_cast<float>(
                    double(static_cast<float>(r)) * inv_dim);
                cy = static_cast<float>(
                    double(cy) * double(3.0f) + double(-1.5f));
                float zx = 0, zy = 0;
                std::int32_t iter = 0;
                while (iter < static_cast<std::int32_t>(max_iter)) {
                    const float zx2 =
                        static_cast<float>(double(zx) * zx);
                    const float zy2 =
                        static_cast<float>(double(zy) * zy);
                    const float mag2 =
                        static_cast<float>(double(zx2) + zy2);
                    if (mag2 > 4.0f)
                        break;
                    const float xy =
                        static_cast<float>(double(zx) * zy);
                    zx = static_cast<float>(double(zx2) - zy2);
                    zx = static_cast<float>(double(zx) + cx);
                    zy = static_cast<float>(
                        double(xy) * double(2.0f) + cy);
                    ++iter;
                }
                expected[r * dim + c] = iter;
            }
        }
        return checkIntBuffer(d, dev_out, expected, "mandelbrot");
    };
    return w;
}

} // namespace iwc::workloads
