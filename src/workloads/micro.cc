/**
 * @file
 * Divergence micro-benchmarks mirroring the paper's Section 5.2
 * study: balanced if/else blocks with controlled lane patterns
 * (Figure 8), nested branches (Table 2), and per-lane loop-trip
 * divergence.
 */

#include <functional>

#include "common/logging.hh"
#include "workloads/registry.hh"

namespace iwc::workloads
{

using isa::CondMod;
using isa::DataType;
using isa::KernelBuilder;

namespace
{

constexpr unsigned kIfElseIters = 12;
constexpr unsigned kFlopsPerBlock = 8;

/** Host mirror of one if/else iteration (interpreter arithmetic). */
double
ifElseBlock(double x, bool taken)
{
    for (unsigned f = 0; f < kFlopsPerBlock; ++f) {
        x = taken
            ? static_cast<float>(x * double(1.0001f) + double(0.5f))
            : static_cast<float>(x * double(0.9999f) + double(0.25f));
    }
    return x;
}

} // namespace

Workload
makeMicroIfElseTyped(gpu::Device &dev, unsigned scale,
                     std::uint32_t pattern, DataType type)
{
    const std::uint64_t n = 2048ull * scale;
    const unsigned local = 64;

    KernelBuilder b(std::string("micro_ifelse_") + isa::dataTypeName(type),
                    16);
    auto out = b.argBuffer("out");
    auto pat = b.argU("pattern");
    auto iters = b.argI("iters");

    auto lane = b.tmp(DataType::UD);
    b.and_(lane, b.localId(), b.ud(15));
    auto bit = b.tmp(DataType::UD);
    b.shr(bit, pat, lane);
    b.and_(bit, bit, b.ud(1));
    b.cmp(CondMod::Ne, 0, bit, b.ud(0));

    const bool int_domain = !isa::isFloatType(type);
    const bool word = type == DataType::W || type == DataType::UW;
    // Word-typed kernels must keep every operand 16 bits wide so the
    // instruction really executes as a 2-cycle SIMD16 word op.
    auto imm_i = [&](std::int16_t v) {
        return word ? b.w(v) : b.d(v);
    };
    auto x = b.tmp(type);
    auto i = b.tmp(DataType::D);
    if (int_domain)
        b.mov(x, imm_i(1));
    else
        b.mov(x, b.f(1.0f));
    b.mov(i, b.d(0));

    b.loop_();
    b.if_(0);
    for (unsigned f = 0; f < kFlopsPerBlock; ++f) {
        if (int_domain)
            b.add(x, x, imm_i(3));
        else
            b.mad(x, x, b.f(1.0001f), b.f(0.5f));
    }
    b.else_();
    for (unsigned f = 0; f < kFlopsPerBlock; ++f) {
        if (int_domain)
            b.add(x, x, imm_i(1));
        else
            b.mad(x, x, b.f(0.9999f), b.f(0.25f));
    }
    b.endif_();
    b.add(i, i, b.d(1));
    b.cmp(CondMod::Lt, 1, i, iters);
    b.endLoop(1);

    // Results are stored as 32-bit floats regardless of compute type.
    auto xf = b.tmp(DataType::F);
    b.mov(xf, x);
    storeGlobal(b, out, b.globalId(), xf, DataType::F);

    Workload w;
    w.kernel = b.build();
    w.name = w.kernel.name();
    w.description = "balanced if/else with a fixed lane pattern";
    w.expectDivergent = pattern != 0xffff && pattern != 0;
    w.globalSize = n;
    w.localSize = local;

    const Addr out_buf = dev.allocBuffer(n * sizeof(float));
    w.args = {gpu::Arg::buffer(out_buf), gpu::Arg::u32(pattern),
              gpu::Arg::i32(static_cast<std::int32_t>(kIfElseIters))};

    const bool wide = type == DataType::DF;
    w.check = [out_buf, n, pattern, wide, int_domain](gpu::Device &d) {
        std::vector<float> expected(n);
        for (std::uint64_t wi = 0; wi < n; ++wi) {
            const unsigned lane = wi % 16;
            const bool taken = (pattern >> lane) & 1;
            if (int_domain) {
                const int x = 1 +
                    static_cast<int>(kIfElseIters * kFlopsPerBlock) *
                        (taken ? 3 : 1);
                expected[wi] = static_cast<float>(x);
                continue;
            }
            double x = 1.0;
            for (unsigned it = 0; it < kIfElseIters; ++it) {
                if (wide) {
                    // DF compute keeps full double precision per op.
                    for (unsigned f = 0; f < kFlopsPerBlock; ++f) {
                        x = taken ? x * double(1.0001f) + double(0.5f)
                                  : x * double(0.9999f) + double(0.25f);
                    }
                } else {
                    x = ifElseBlock(x, taken);
                }
            }
            expected[wi] = static_cast<float>(x);
        }
        return checkFloatBuffer(d, out_buf, expected, "micro_ifelse",
                                1e-3);
    };
    return w;
}

Workload
makeMicroIfElsePattern(gpu::Device &dev, unsigned scale,
                       std::uint32_t pattern)
{
    Workload w = makeMicroIfElseTyped(dev, scale, pattern, DataType::F);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "micro_ifelse_%04x", pattern);
    w.name = buf;
    return w;
}

Workload
makeMicroIfElse(gpu::Device &dev, unsigned scale)
{
    return makeMicroIfElsePattern(dev, scale, 0xf0f0);
}

Workload
makeMicroNestedDepth(gpu::Device &dev, unsigned scale, unsigned depth)
{
    fatal_if(depth < 1 || depth > 4, "nested micro depth must be 1..4");
    const std::uint64_t n = 2048ull * scale;
    const unsigned local = 64;
    constexpr unsigned kIters = 8;
    constexpr unsigned kLeafFlops = 6;

    KernelBuilder b("micro_nested_l" + std::to_string(depth), 16);
    auto out = b.argBuffer("out");
    auto iters = b.argI("iters");

    auto lane = b.tmp(DataType::UD);
    b.and_(lane, b.localId(), b.ud(15));
    auto t = b.tmp(DataType::UD);
    auto x = b.tmp(DataType::F);
    auto i = b.tmp(DataType::D);
    b.mov(x, b.f(1.0f));
    b.mov(i, b.d(0));

    // Emit a full binary tree of nested if/else on lane bits; each
    // leaf multiplies by a path-specific constant (Table 2 patterns).
    std::function<void(unsigned, unsigned)> emit = [&](unsigned level,
                                                       unsigned path) {
        if (level == depth) {
            const float c = 1.0f + 0.001f * static_cast<float>(path + 1);
            for (unsigned f = 0; f < kLeafFlops; ++f)
                b.mad(x, x, b.f(c), b.f(0.125f));
            return;
        }
        b.and_(t, lane, b.ud(1u << level));
        b.cmp(CondMod::Ne, 0, t, b.ud(0));
        b.if_(0);
        emit(level + 1, path * 2 + 1);
        b.else_();
        emit(level + 1, path * 2);
        b.endif_();
    };

    b.loop_();
    emit(0, 0);
    b.add(i, i, b.d(1));
    b.cmp(CondMod::Lt, 1, i, iters);
    b.endLoop(1);

    storeGlobal(b, out, b.globalId(), x, DataType::F);

    Workload w;
    w.kernel = b.build();
    w.name = w.kernel.name();
    w.description = "nested divergent branches, depth " +
        std::to_string(depth);
    w.expectDivergent = true;
    w.globalSize = n;
    w.localSize = local;

    const Addr out_buf = dev.allocBuffer(n * sizeof(float));
    w.args = {gpu::Arg::buffer(out_buf),
              gpu::Arg::i32(static_cast<std::int32_t>(kIters))};

    w.check = [out_buf, n, depth](gpu::Device &d) {
        std::vector<float> expected(n);
        for (std::uint64_t wi = 0; wi < n; ++wi) {
            const unsigned lane = wi % 16;
            unsigned path = 0;
            for (unsigned level = 0; level < depth; ++level)
                path = path * 2 + ((lane >> level) & 1);
            const float c =
                1.0f + 0.001f * static_cast<float>(path + 1);
            double x = 1.0;
            for (unsigned it = 0; it < kIters; ++it)
                for (unsigned f = 0; f < kLeafFlops; ++f)
                    x = static_cast<float>(x * double(c) +
                                           double(0.125f));
            expected[wi] = static_cast<float>(x);
        }
        return checkFloatBuffer(d, out_buf, expected, "micro_nested",
                                1e-3);
    };
    return w;
}

Workload
makeMicroNested(gpu::Device &dev, unsigned scale)
{
    return makeMicroNestedDepth(dev, scale, 2);
}

Workload
makeMicroLoopTrip(gpu::Device &dev, unsigned scale)
{
    const std::uint64_t n = 2048ull * scale;
    const unsigned local = 64;

    KernelBuilder b("micro_looptrip", 16);
    auto out = b.argBuffer("out");

    auto lane = b.tmp(DataType::UD);
    b.and_(lane, b.localId(), b.ud(15));
    auto trips = b.tmp(DataType::D);
    b.add(trips, lane, b.ud(1)); // 1..16 iterations per lane

    auto x = b.tmp(DataType::F);
    auto i = b.tmp(DataType::D);
    b.mov(x, b.f(0.0f));
    b.mov(i, b.d(0));

    b.loop_();
    b.cmp(CondMod::Ge, 0, i, trips);
    b.breakIf(0);
    b.mad(x, x, b.f(1.5f), b.f(1.0f));
    b.add(i, i, b.d(1));
    b.cmp(CondMod::Lt, 1, i, b.d(64));
    b.endLoop(1);

    storeGlobal(b, out, b.globalId(), x, DataType::F);

    Workload w;
    w.kernel = b.build();
    w.name = "micro_looptrip";
    w.description = "per-lane loop trip counts 1..16";
    w.expectDivergent = true;
    w.globalSize = n;
    w.localSize = local;

    const Addr out_buf = dev.allocBuffer(n * sizeof(float));
    w.args = {gpu::Arg::buffer(out_buf)};

    w.check = [out_buf, n](gpu::Device &d) {
        std::vector<float> expected(n);
        for (std::uint64_t wi = 0; wi < n; ++wi) {
            const unsigned trips = (wi % 16) + 1;
            double x = 0.0;
            for (unsigned it = 0; it < trips; ++it)
                x = static_cast<float>(x * double(1.5f) + double(1.0f));
            expected[wi] = static_cast<float>(x);
        }
        return checkFloatBuffer(d, out_buf, expected, "micro_looptrip",
                                1e-3);
    };
    return w;
}

} // namespace iwc::workloads
