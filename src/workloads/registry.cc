#include "workloads/registry.hh"

#include "common/logging.hh"

namespace iwc::workloads
{

const std::vector<Entry> &
registry()
{
    // clang-format off
    static const std::vector<Entry> entries = {
        // Micro-benchmarks
        {"micro_ifelse", "balanced if/else, pattern 0xF0F0", true,
         makeMicroIfElse},
        {"micro_nested", "nested divergent branches", true,
         makeMicroNested},
        {"micro_looptrip", "per-lane loop trips", true,
         makeMicroLoopTrip},
        // Linear algebra
        {"va", "vector addition", false, makeVectorAdd},
        {"dp", "dot product (SLM reduction)", true, makeDotProduct},
        {"mvm", "matrix-vector multiply", false, makeMatVecMul},
        {"mm", "matrix multiply", false, makeMatMul},
        {"trans", "matrix transpose", false, makeTranspose},
        {"dct8", "8-point DCT", false, makeDct8},
        {"scla", "workgroup scan", true, makeScanLargeArray},
        // Finance / RNG
        {"bscholes", "Black-Scholes", false, makeBlackScholes},
        {"bop", "binomial option pricing", false, makeBinomialOptions},
        {"mca", "Monte Carlo Asian option", false, makeMonteCarloAsian},
        {"urng", "uniform RNG", false, makeUrng},
        // Rodinia-style divergent set
        {"bfs", "BFS frontier expansion", true, makeBfs},
        {"hotspot", "thermal stencil", true, makeHotspot},
        {"lavamd", "particle cutoff interactions", true, makeLavaMd},
        {"nw", "sequence scoring", true, makeNeedlemanWunsch},
        {"partfilt", "particle filter resampling", true,
         makeParticleFilter},
        {"path", "grid path relaxation", true, makePathFinder},
        {"kmeans", "k-means assignment", true, makeKmeans},
        {"srad", "speckle-reducing diffusion", true, makeSrad},
        // Graph / search
        {"fw", "Floyd-Warshall step", false, makeFloydWarshall},
        {"bsearch", "binary search", true, makeBinarySearch},
        {"treesearch", "BST membership", true, makeTreeSearch},
        // Image / media
        {"sobel", "Sobel filter", false, makeSobel},
        {"boxfilter", "box filter", false, makeBoxFilter},
        {"dwthaar", "Haar DWT", false, makeDwtHaar},
        {"mandelbrot", "escape-time fractal", true, makeMandelbrot},
        // Sorting / transforms / extra
        {"bsort", "bitonic sort", true, makeBitonicSort},
        {"fwht", "fast Walsh-Hadamard transform", true, makeFwht},
        {"gauss", "Gaussian elimination step", false, makeGauss},
        {"scnv", "simple convolution", false, makeSimpleConvolution},
        // Ray tracing
        {"rt_pr_alien", "primary rays, alien scene", true,
         makeRtPrimaryAlien},
        {"rt_pr_bulldozer", "primary rays, bulldozer scene", true,
         makeRtPrimaryBulldozer},
        {"rt_pr_windmill", "primary rays, windmill scene", true,
         makeRtPrimaryWindmill},
        {"rt_ao_alien8", "AO, alien scene, SIMD8", true,
         makeRtAoAlien8},
        {"rt_ao_bulldozer8", "AO, bulldozer scene, SIMD8", true,
         makeRtAoBulldozer8},
        {"rt_ao_windmill8", "AO, windmill scene, SIMD8", true,
         makeRtAoWindmill8},
        {"rt_ao_alien16", "AO, alien scene, SIMD16", true,
         makeRtAoAlien16},
        {"rt_ao_bulldozer16", "AO, bulldozer scene, SIMD16", true,
         makeRtAoBulldozer16},
        {"rt_ao_windmill16", "AO, windmill scene, SIMD16", true,
         makeRtAoWindmill16},
    };
    // clang-format on
    return entries;
}

const Entry &
entryByName(const std::string &name)
{
    for (const Entry &entry : registry())
        if (name == entry.name)
            return entry;
    fatal("unknown workload '%s'", name.c_str());
}

Workload
make(const std::string &name, gpu::Device &dev, unsigned scale)
{
    return entryByName(name).factory(dev, scale);
}

std::vector<std::string>
allNames()
{
    std::vector<std::string> names;
    for (const Entry &entry : registry())
        names.push_back(entry.name);
    return names;
}

std::vector<std::string>
divergentNames()
{
    std::vector<std::string> names;
    for (const Entry &entry : registry())
        if (entry.expectDivergent)
            names.push_back(entry.name);
    return names;
}

std::vector<std::string>
coherentNames()
{
    std::vector<std::string> names;
    for (const Entry &entry : registry())
        if (!entry.expectDivergent)
            names.push_back(entry.name);
    return names;
}

} // namespace iwc::workloads
