/**
 * @file
 * The SCC control-logic algorithm of the paper's Figure 6: derives
 * per-cycle swizzle and lane-enable settings that compress execution
 * to the optimal ceil(popcount / groupWidth) cycles while minimizing
 * the number of intra-quad lane swizzles.
 */

#ifndef IWC_COMPACTION_SCC_ALGORITHM_HH
#define IWC_COMPACTION_SCC_ALGORITHM_HH

#include "compaction/cycle_plan.hh"

namespace iwc::compaction
{

/**
 * Computes the SCC execution schedule for @p shape.
 *
 * Implements Figure 6 exactly: per-lane queues of the channel groups in
 * which that lane position is active, a surplus count per lane relative
 * to the optimal cycle count, and a per-cycle pass that keeps a lane's
 * own work in place when available and fills empty lanes from surplus
 * lanes through the swizzle crossbar. When the active-group count
 * already equals the optimal cycle count the schedule degenerates to
 * BCC-style empty-group skipping with no swizzles ("skip empty quads,
 * BCC-like. Done").
 */
CyclePlan planScc(const ExecShape &shape);

} // namespace iwc::compaction

#endif // IWC_COMPACTION_SCC_ALGORITHM_HH
