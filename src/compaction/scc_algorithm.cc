#include "compaction/scc_algorithm.hh"

#include <array>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace iwc::compaction
{

namespace
{

/**
 * Fixed-capacity FIFO of channel-group indices; the hardware analogue
 * is a short shift register per lane position.
 */
class LaneQueue
{
  public:
    void push(std::int8_t group) { groups_[tail_++] = group; }

    std::int8_t
    pop()
    {
        panic_if(empty(), "pop from empty SCC lane queue");
        return groups_[head_++];
    }

    bool empty() const { return head_ == tail_; }
    unsigned size() const { return tail_ - head_; }

  private:
    std::array<std::int8_t, kMaxSimdWidth> groups_{};
    unsigned head_ = 0;
    unsigned tail_ = 0;
};

} // namespace

CyclePlan
planScc(const ExecShape &shape)
{
    const unsigned gw = groupWidth(shape.simdWidth, shape.elemBytes);
    const unsigned n_groups = numGroups(shape.simdWidth, shape.elemBytes);
    const LaneMask mask = shape.maskedExec();
    // The per-slot lane arrays below are sized kMaxGroupWidth, which
    // assumes the 2-byte minimum element of isa::dataTypeSize; a
    // sub-word element would make gw overrun them.
    panic_if(gw > kMaxGroupWidth,
             "SCC plan: group width %u exceeds %u (element size %u "
             "below the ISA minimum?)",
             gw, kMaxGroupWidth, shape.elemBytes);

    CyclePlan plan;
    plan.groupWidth = gw;
    plan.numGroups = n_groups;

    const unsigned active_lanes = popCount(mask);
    if (active_lanes == 0)
        return plan; // fully predicated off: zero execution cycles

    // o_cyc_cnt = ceil(active lanes / hardware width).
    const unsigned opt_cycles =
        static_cast<unsigned>(ceilDiv(active_lanes, gw));

    // Count active quads; if it already matches the optimum, skip empty
    // quads BCC-style with no swizzling.
    unsigned active_quads = 0;
    for (unsigned g = 0; g < n_groups; ++g)
        if (extractGroup(mask, g, gw) != 0)
            ++active_quads;

    if (active_quads == opt_cycles) {
        for (unsigned g = 0; g < n_groups; ++g) {
            const LaneMask bits = extractGroup(mask, g, gw);
            if (bits == 0)
                continue;
            CycleSlot slot;
            for (unsigned n = 0; n < gw; ++n) {
                if (bits & (LaneMask{1} << n)) {
                    slot.lanes[n].srcGroup = static_cast<std::int8_t>(g);
                    slot.lanes[n].srcLane = static_cast<std::int8_t>(n);
                }
            }
            plan.slots.push_back(slot);
        }
        return plan;
    }

    // Initial setup: per-lane queues of quads in which that lane is
    // active, and the surplus of each lane over the optimal cycle count.
    std::array<LaneQueue, kMaxGroupWidth> queues;
    for (unsigned g = 0; g < n_groups; ++g) {
        const LaneMask bits = extractGroup(mask, g, gw);
        for (unsigned n = 0; n < gw; ++n)
            if (bits & (LaneMask{1} << n))
                queues[n].push(static_cast<std::int8_t>(g));
    }

    std::array<unsigned, kMaxGroupWidth> surplus{};
    unsigned tot_surplus = 0;
    for (unsigned n = 0; n < gw; ++n) {
        const unsigned len = queues[n].size();
        surplus[n] = len > opt_cycles ? len - opt_cycles : 0;
        tot_surplus += surplus[n];
    }

    // Per-cycle schedule: unswizzled lanes first, then fill empty lane
    // positions from surplus lanes through the crossbar.
    for (unsigned c = 0; c < opt_cycles; ++c) {
        CycleSlot slot;
        for (unsigned n = 0; n < gw; ++n) {
            if (!queues[n].empty()) {
                slot.lanes[n].srcGroup = queues[n].pop();
                slot.lanes[n].srcLane = static_cast<std::int8_t>(n);
            } else if (tot_surplus != 0) {
                // Dequeue from some lane m with remaining surplus.
                unsigned m = 0;
                while (m < gw && (surplus[m] == 0 || queues[m].empty()))
                    ++m;
                panic_if(m == gw, "SCC surplus accounting broken");
                slot.lanes[n].srcGroup = queues[m].pop();
                slot.lanes[n].srcLane = static_cast<std::int8_t>(m);
                --surplus[m];
                --tot_surplus;
            }
            // else: no surplus, lane not filled this cycle.
        }
        plan.slots.push_back(slot);
    }

    for (unsigned n = 0; n < gw; ++n)
        panic_if(!queues[n].empty(),
                 "SCC schedule left lane %u work unissued", n);

    return plan;
}

} // namespace iwc::compaction
