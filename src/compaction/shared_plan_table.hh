/**
 * @file
 * Process-wide memoization of cycle-plan costs. PlanCosts is a pure
 * function of ExecShape (no kernel or run state), so the results one
 * run computes are valid for every other run in the process — yet the
 * per-EU PlanCache used to recompute them per launch. The shared
 * table is the second level behind those per-EU caches: an L1 miss
 * consults it before falling back to the planCycleCount/planScc
 * computation, so SweepRunner jobs, daemon workers, and multi-mode
 * compare runs plan each (width, elem, mask) shape once per process.
 *
 * The per-EU caches stay in front on purpose: their hit/miss counts
 * are wire-encoded into LaunchStats and must remain a pure function
 * of the request (daemon cache soundness), so per-run counters cannot
 * observe cross-run table state. The shared table's own counters are
 * process totals for observability only.
 *
 * Concurrency: direct-mapped slots hold the packed costs in one
 * atomic and a valid flag in another, published with release/acquire
 * ordering. Two threads that race on first sight of a shape both
 * compute the same pure value and store identical bytes — the race is
 * benign and every access is atomic, so it is also data-race-free.
 */

#ifndef IWC_COMPACTION_SHARED_PLAN_TABLE_HH
#define IWC_COMPACTION_SHARED_PLAN_TABLE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "compaction/plan_cache.hh"

namespace iwc::compaction
{

/** Process-wide shape-keyed plan cost table (see file comment). */
class SharedPlanTable
{
  public:
    /** The process-wide instance every PlanCache shares. */
    static SharedPlanTable &instance();

    /** Plan costs for @p shape, memoized process-wide. Thread-safe. */
    PlanCosts costs(const ExecShape &shape);

    std::uint64_t
    hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }

  private:
    static constexpr unsigned kDirectMappedWidth = 16;
    static constexpr std::uint32_t kValid = 1u << 16;

    /**
     * One direct-mapped entry. cycles packs the four per-mode u16
     * counts; state packs the SCC swizzle count (low 16 bits) with
     * the valid bit. Writers store cycles first, then release-store
     * state; readers acquire-load state before reading cycles.
     */
    struct Slot
    {
        std::atomic<std::uint64_t> cycles{0};
        std::atomic<std::uint32_t> state{0};
    };

    Slot *table(unsigned width_index, unsigned shift, unsigned width);

    /** [widthIndex][elemShift] lazily-published slot arrays. */
    std::array<std::array<std::atomic<Slot *>, 4>, 5> tables_{};
    std::mutex allocMu_;
    std::vector<std::unique_ptr<Slot[]>> owned_;

    /** SIMD32 masks, per element shift, mutex-guarded. */
    std::array<std::unordered_map<LaneMask, PlanCosts>, 4> wide_;
    std::mutex wideMu_;

    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

} // namespace iwc::compaction

#endif // IWC_COMPACTION_SHARED_PLAN_TABLE_HH
