/**
 * @file
 * Idealized inter-warp compaction analyzer, for the paper's central
 * comparison (Sections 1-2): thread-block-compaction-style schemes
 * (TBC / LWM / CAPRI) merge the enabled lanes of *different warps*
 * executing the same instruction, at the cost of implicit warp
 * barriers, per-lane addressable register files, and increased memory
 * divergence. This analyzer computes an *upper bound* on what such a
 * scheme could achieve on a workload — perfect PC synchronization is
 * assumed (the k-th dynamic execution of a static instruction is
 * merged across every subgroup of a workgroup) — together with the
 * memory-divergence cost of the merge, so the paper's claim "intra-
 * warp compaction delivers the bulk of the benefit without creating
 * memory divergence" can be evaluated quantitatively.
 *
 * Like TBC, merged threads keep their home lane position (no lane
 * swizzling across warps): the compacted warp count for one merge
 * group is max over lane positions of the number of warps with that
 * lane enabled.
 */

#ifndef IWC_COMPACTION_INTERWARP_HH
#define IWC_COMPACTION_INTERWARP_HH

#include <cstdint>
#include <map>
#include <vector>

#include "compaction/cycle_plan.hh"
#include "func/interp.hh"

namespace iwc::compaction
{

/** Aggregate comparison of intra-warp vs idealized inter-warp. */
struct InterWarpStats
{
    // --- ALU execution cycles (same instruction stream) ---
    std::uint64_t intraBaselineCycles = 0; ///< per-warp, no compaction
    std::uint64_t intraIvbCycles = 0;      ///< per-warp, IvbOpt
    std::uint64_t intraBccCycles = 0;      ///< per-warp BCC
    std::uint64_t intraSccCycles = 0;      ///< per-warp SCC (ours)
    std::uint64_t interWarpCycles = 0;     ///< TBC-style merged warps
    std::uint64_t interWarpSccCycles = 0;  ///< merged + intra SCC

    // --- Memory divergence (gather/scatter messages only) ---
    std::uint64_t intraMessages = 0;
    std::uint64_t intraLines = 0;
    std::uint64_t interMessages = 0;
    std::uint64_t interLines = 0;

    double
    intraLinesPerMessage() const
    {
        return intraMessages
            ? static_cast<double>(intraLines) / intraMessages
            : 0.0;
    }

    double
    interLinesPerMessage() const
    {
        return interMessages
            ? static_cast<double>(interLines) / interMessages
            : 0.0;
    }

    /** Fractional cycle reduction of scheme X vs intra baseline. */
    double
    reductionVsBaseline(std::uint64_t cycles) const
    {
        return intraBaselineCycles
            ? 1.0 - static_cast<double>(cycles) / intraBaselineCycles
            : 0.0;
    }
};

/**
 * Streaming analyzer fed from runKernelFunctionalDetailed. Records
 * are grouped by (static ip, dynamic occurrence) within a workgroup
 * and merged TBC-style when the workgroup completes.
 */
class InterWarpAnalyzer
{
  public:
    explicit InterWarpAnalyzer(unsigned lane_group_width = 4)
        : laneGroup_(lane_group_width)
    {
    }

    /** Feeds one executed instruction. */
    void add(unsigned workgroup, unsigned subgroup, std::uint32_t ip,
             std::uint64_t occurrence, const func::StepResult &result);

    /** Flushes the last workgroup and returns the totals. */
    const InterWarpStats &finalize();

  private:
    struct Member
    {
        LaneMask mask = 0;
        bool hasMem = false;
        std::array<Addr, kMaxSimdWidth> addrs{};
        unsigned elemBytes = 4;
    };

    struct MergeGroup
    {
        std::uint8_t simdWidth = 16;
        std::uint8_t elemBytes = 4;
        bool isSend = false;
        std::vector<Member> members;
    };

    void flushWorkgroup();
    void processGroup(const MergeGroup &group);

    unsigned laneGroup_;
    int currentWg_ = -1;
    std::map<std::pair<std::uint32_t, std::uint64_t>, MergeGroup>
        pending_;
    InterWarpStats stats_;
    bool finalized_ = false;
};

} // namespace iwc::compaction

#endif // IWC_COMPACTION_INTERWARP_HH
