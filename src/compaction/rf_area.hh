/**
 * @file
 * First-order analytical register-file area model standing in for the
 * paper's CACTI 5.x comparison (Section 4.3). The model captures the
 * dominant effects CACTI reports for small SRAM arrays: cell area
 * proportional to capacity and port count, row-decode and word-line
 * cost growing with the row count, column periphery growing with the
 * row width, and a fixed per-bank overhead. Constants are calibrated
 * so that the baseline Ivy Bridge organization normalizes to 1.0 and
 * the paper's orderings hold (BCC ~ +10%, per-lane 8-banked > +40%,
 * SCC slightly smaller than baseline).
 */

#ifndef IWC_COMPACTION_RF_AREA_HH
#define IWC_COMPACTION_RF_AREA_HH

namespace iwc::compaction
{

/** Physical organization of a register file. */
struct RfOrganization
{
    unsigned rows = 128;       ///< words per bank
    unsigned bitsPerRow = 256; ///< word width in bits
    unsigned banks = 1;        ///< independently addressable banks
    unsigned ports = 1;        ///< read/write port pairs per cell
};

/** Area in arbitrary units (compare ratios, not absolutes). */
double rfArea(const RfOrganization &org);

/** The four organizations compared in Section 4.3 / Figure 5. */
RfOrganization baselineRf();   ///< 128 x 256b, single bank
RfOrganization bccRf();        ///< 256 x 128b half-register access
RfOrganization sccRf();        ///< 64 x 512b wide/short
RfOrganization perLaneRf();    ///< 8 banks x 128 x 32b (inter-warp)

/** Area of @p org relative to the baseline organization. */
double rfAreaRelative(const RfOrganization &org);

} // namespace iwc::compaction

#endif // IWC_COMPACTION_RF_AREA_HH
