#include "compaction/plan_cache.hh"

#include "compaction/scc_algorithm.hh"
#include "compaction/shared_plan_table.hh"

namespace iwc::compaction
{

PlanCosts
PlanCache::sharedCosts(const ExecShape &shape)
{
    return SharedPlanTable::instance().costs(shape);
}

PlanCosts
PlanCache::compute(const ExecShape &shape)
{
    PlanCosts costs;
    for (unsigned m = 0; m < kNumModes; ++m) {
        costs.cycles[m] = static_cast<std::uint16_t>(
            planCycleCount(static_cast<Mode>(m), shape));
    }
    costs.sccSwizzledLanes =
        static_cast<std::uint16_t>(planScc(shape).swizzledLanes());
    return costs;
}

} // namespace iwc::compaction
