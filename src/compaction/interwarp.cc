#include "compaction/interwarp.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "mem/coalescer.hh"

namespace iwc::compaction
{

void
InterWarpAnalyzer::add(unsigned workgroup, unsigned subgroup,
                       std::uint32_t ip, std::uint64_t occurrence,
                       const func::StepResult &result)
{
    panic_if(finalized_, "add() after finalize()");
    const isa::Instruction &in = *result.instr;

    // Control flow is not compactable under either family of schemes.
    if (isa::isControlFlow(in.op))
        return;
    // Barriers/fences and block/SLM messages are warp-level
    // operations that compaction leaves alone.
    if (in.op == isa::Opcode::Send &&
        (!result.hasMem || result.mem.isBlock ||
         isa::isSlmSend(in.send.op)))
        return;

    if (static_cast<int>(workgroup) != currentWg_) {
        flushWorkgroup();
        currentWg_ = static_cast<int>(workgroup);
    }

    MergeGroup &group = pending_[{ip, occurrence}];
    if (group.members.empty()) {
        group.simdWidth = in.simdWidth;
        group.elemBytes =
            static_cast<std::uint8_t>(isa::execElemBytes(in));
        group.isSend = in.op == isa::Opcode::Send;
    }
    Member member;
    member.mask = result.execMask & in.widthMask();
    if (result.hasMem) {
        member.hasMem = true;
        member.addrs = result.mem.addrs;
        member.elemBytes = result.mem.elemBytes;
    }
    (void)subgroup; // merge order is the feed order
    group.members.push_back(member);
}

void
InterWarpAnalyzer::processGroup(const MergeGroup &group)
{
    const unsigned width = group.simdWidth;
    const unsigned groups_per_instr = numGroups(width, group.elemBytes);

    // Per-lane count of warps with that lane enabled: TBC keeps home
    // lanes, so the compacted warp count is the maximum per-lane load.
    std::vector<unsigned> lane_load(width, 0);
    for (const Member &m : group.members)
        for (unsigned lane = 0; lane < width; ++lane)
            if (m.mask & (LaneMask{1} << lane))
                ++lane_load[lane];
    const unsigned compacted =
        *std::max_element(lane_load.begin(), lane_load.end());

    if (!group.isSend) {
        // --- Execution-cycle accounting ---
        for (const Member &m : group.members) {
            const ExecShape shape{group.simdWidth, group.elemBytes,
                                  m.mask};
            stats_.intraBaselineCycles +=
                planCycleCount(Mode::Baseline, shape);
            stats_.intraIvbCycles +=
                planCycleCount(Mode::IvbOpt, shape);
            stats_.intraBccCycles += planCycleCount(Mode::Bcc, shape);
            stats_.intraSccCycles += planCycleCount(Mode::Scc, shape);
        }
        // Plain TBC: each compacted warp runs full width.
        stats_.interWarpCycles +=
            static_cast<std::uint64_t>(compacted) * groups_per_instr;
        // TBC + intra-warp SCC on the merged masks: compacted warp w
        // holds lane l iff lane_load[l] > w.
        for (unsigned w = 0; w < compacted; ++w) {
            unsigned active = 0;
            for (unsigned lane = 0; lane < width; ++lane)
                if (lane_load[lane] > w)
                    ++active;
            stats_.interWarpSccCycles += ceilDiv(active, laneGroup_);
        }
        return;
    }

    // --- Memory-divergence accounting (gather/scatter sends) ---
    // Intra-warp: every original warp issues its own message.
    for (const Member &m : group.members) {
        if (m.mask == 0)
            continue;
        func::MemAccess access;
        access.elemBytes = m.elemBytes;
        access.mask = m.mask;
        access.addrs = m.addrs;
        ++stats_.intraMessages;
        stats_.intraLines += mem::coalesceLines(access).size();
    }
    // Inter-warp: compacted warp w's lane l carries the address of
    // the (w+1)-th member warp with lane l enabled.
    for (unsigned w = 0; w < compacted; ++w) {
        func::MemAccess access;
        access.elemBytes = group.members.empty()
            ? 4 : group.members.front().elemBytes;
        for (unsigned lane = 0; lane < width; ++lane) {
            unsigned seen = 0;
            for (const Member &m : group.members) {
                if (!(m.mask & (LaneMask{1} << lane)))
                    continue;
                if (seen == w) {
                    access.mask |= LaneMask{1} << lane;
                    access.addrs[lane] = m.addrs[lane];
                    break;
                }
                ++seen;
            }
        }
        if (access.mask == 0)
            continue;
        ++stats_.interMessages;
        stats_.interLines += mem::coalesceLines(access).size();
    }
}

void
InterWarpAnalyzer::flushWorkgroup()
{
    for (const auto &[key, group] : pending_)
        processGroup(group);
    pending_.clear();
}

const InterWarpStats &
InterWarpAnalyzer::finalize()
{
    if (!finalized_) {
        flushWorkgroup();
        finalized_ = true;
    }
    return stats_;
}

} // namespace iwc::compaction
