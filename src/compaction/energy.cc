#include "compaction/energy.hh"

#include "common/bitutil.hh"
#include "compaction/scc_algorithm.hh"

namespace iwc::compaction
{

void
EnergyModel::addAlu(const ExecShape &shape, unsigned src_operands)
{
    const unsigned active = popCount(shape.maskedExec());

    for (unsigned m = 0; m < kNumModes; ++m) {
        const Mode mode = static_cast<Mode>(m);
        EnergyBreakdown &e = perMode_[m];

        const unsigned cycles = planCycleCount(mode, shape);
        e.cycleOverhead += costs_.cycleOverhead * cycles;
        // The enabled lanes do the same arithmetic under every mode.
        e.laneActive += costs_.laneActive * active;

        switch (mode) {
          case Mode::Baseline:
          case Mode::IvbOpt:
          case Mode::Bcc:
            // Half-register fetch per surviving channel group per
            // source operand (BCC's fetch suppression shows up as
            // fewer cycles here).
            e.rfFetch += costs_.rfHalfFetch * cycles * src_operands;
            break;
          case Mode::Scc: {
            // SCC fetches operands full width regardless of the
            // compression (Section 4.2), so it pays the *IvbOpt*
            // fetch count, plus crossbar toggles for moved lanes.
            const unsigned ivb_cycles =
                planCycleCount(Mode::IvbOpt, shape);
            e.rfFetch +=
                costs_.rfHalfFetch * ivb_cycles * src_operands;
            e.swizzle +=
                costs_.swizzle * planScc(shape).swizzledLanes();
            break;
          }
          case Mode::NumModes:
            break;
        }
    }
}

double
EnergyModel::relative(Mode mode) const
{
    const double base =
        perMode_[static_cast<unsigned>(Mode::Baseline)].total();
    return base == 0
        ? 1.0
        : perMode_[static_cast<unsigned>(mode)].total() / base;
}

} // namespace iwc::compaction
