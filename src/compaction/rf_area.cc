#include "compaction/rf_area.hh"

#include <cmath>

#include "common/logging.hh"

namespace iwc::compaction
{

namespace
{

// Calibration constants (arbitrary cell-area units). See header.
constexpr double kDecodePerRowLog = 3.0; ///< row decode + WL driver
constexpr double kColumnPerBit = 2.0;    ///< sense amps / column mux
constexpr double kBankFixed = 500.0;     ///< control, routing per bank
constexpr double kPortGrowth = 0.7;      ///< extra cell area per port

} // namespace

double
rfArea(const RfOrganization &org)
{
    panic_if(org.rows == 0 || org.bitsPerRow == 0 || org.banks == 0 ||
             org.ports == 0, "degenerate register file organization");
    const double cell_scale = 1.0 + kPortGrowth * (org.ports - 1);
    const double cells = static_cast<double>(org.rows) * org.bitsPerRow *
        cell_scale;
    const double decode = kDecodePerRowLog * org.rows *
        std::log2(static_cast<double>(org.rows));
    const double columns = kColumnPerBit * org.bitsPerRow;
    const double per_bank = cells + decode + columns + kBankFixed;
    return per_bank * org.banks;
}

RfOrganization
baselineRf()
{
    return {128, 256, 1, 1};
}

RfOrganization
bccRf()
{
    // Half-register (128b) fetch granularity doubles the row count.
    return {256, 128, 1, 1};
}

RfOrganization
sccRf()
{
    // Full-width 512b operand fetch: wider but shorter than baseline.
    return {64, 512, 1, 1};
}

RfOrganization
perLaneRf()
{
    // Inter-warp compaction needs a per-lane addressable bank per lane
    // pair: 8 banks of 32b words, each with its own decoder.
    return {128, 32, 8, 1};
}

double
rfAreaRelative(const RfOrganization &org)
{
    return rfArea(org) / rfArea(baselineRf());
}

} // namespace iwc::compaction
