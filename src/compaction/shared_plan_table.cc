#include "compaction/shared_plan_table.hh"

namespace iwc::compaction
{

namespace
{

std::uint64_t
packCycles(const PlanCosts &costs)
{
    std::uint64_t packed = 0;
    for (unsigned m = 0; m < kNumModes; ++m)
        packed |= static_cast<std::uint64_t>(costs.cycles[m]) << (16 * m);
    return packed;
}

PlanCosts
unpack(std::uint64_t cycles, std::uint32_t state)
{
    PlanCosts costs;
    for (unsigned m = 0; m < kNumModes; ++m)
        costs.cycles[m] =
            static_cast<std::uint16_t>((cycles >> (16 * m)) & 0xffff);
    costs.sccSwizzledLanes = static_cast<std::uint16_t>(state & 0xffff);
    return costs;
}

} // namespace

SharedPlanTable &
SharedPlanTable::instance()
{
    static SharedPlanTable table;
    return table;
}

SharedPlanTable::Slot *
SharedPlanTable::table(unsigned width_index, unsigned shift,
                       unsigned width)
{
    std::atomic<Slot *> &cell = tables_[width_index][shift];
    Slot *slots = cell.load(std::memory_order_acquire);
    if (slots != nullptr)
        return slots;
    std::lock_guard<std::mutex> lock(allocMu_);
    slots = cell.load(std::memory_order_relaxed);
    if (slots == nullptr) {
        auto fresh = std::make_unique<Slot[]>(std::size_t{1} << width);
        slots = fresh.get();
        owned_.push_back(std::move(fresh));
        cell.store(slots, std::memory_order_release);
    }
    return slots;
}

PlanCosts
SharedPlanTable::costs(const ExecShape &shape)
{
    const unsigned width = shape.simdWidth;
    const unsigned shift =
        static_cast<unsigned>(std::bit_width(shape.elemBytes) - 1);
    panic_if(shift >= wide_.size() ||
                 (width <= kDirectMappedWidth &&
                  static_cast<unsigned>(std::bit_width(width) - 1) >=
                      tables_.size()),
             "shared plan table: unsupported shape simd%u elem%u", width,
             shape.elemBytes);
    if (width <= kDirectMappedWidth) {
        const unsigned wi =
            static_cast<unsigned>(std::bit_width(width) - 1);
        Slot &slot = table(wi, shift, width)[shape.maskedExec()];
        const std::uint32_t state =
            slot.state.load(std::memory_order_acquire);
        if (state & kValid) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return unpack(slot.cycles.load(std::memory_order_relaxed),
                          state);
        }
        const PlanCosts fresh = PlanCache::compute(shape);
        slot.cycles.store(packCycles(fresh), std::memory_order_relaxed);
        slot.state.store(kValid | fresh.sccSwizzledLanes,
                         std::memory_order_release);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return fresh;
    }
    std::lock_guard<std::mutex> lock(wideMu_);
    const auto [it, inserted] =
        wide_[shift].try_emplace(shape.maskedExec());
    if (inserted) {
        it->second = PlanCache::compute(shape);
        misses_.fetch_add(1, std::memory_order_relaxed);
    } else {
        hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return it->second;
}

} // namespace iwc::compaction
