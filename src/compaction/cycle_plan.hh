/**
 * @file
 * Execution-cycle planning under the four compaction modes studied in
 * the paper:
 *
 *  - Baseline: every channel group is sequenced through the ALU whether
 *    or not any of its channels are enabled.
 *  - IvbOpt: the pre-existing Ivy Bridge optimization inferred in
 *    Section 5.2 — a SIMD16 instruction whose upper or lower eight
 *    channels are all disabled executes as SIMD8 (half the cycles).
 *  - Bcc: basic cycle compression (Section 3.1) — channel groups whose
 *    mask bits are all zero are skipped entirely.
 *  - Scc: swizzled cycle compression (Section 3.2) — enabled channels
 *    are permuted across lane positions to reach the optimal
 *    ceil(popcount / groupWidth) cycles, per the Figure 6 algorithm.
 *
 * A CyclePlan records, for each issued execution cycle, which source
 * channel feeds each hardware lane, so the timing model can derive
 * occupancy, swizzle activity, and operand-fetch suppression from it.
 */

#ifndef IWC_COMPACTION_CYCLE_PLAN_HH
#define IWC_COMPACTION_CYCLE_PLAN_HH

#include <array>
#include <cstdint>
#include <vector>

#include "compaction/mask_info.hh"
#include "common/types.hh"

namespace iwc::compaction
{

/** The divergence-optimization mode an EU is configured with. */
enum class Mode : std::uint8_t
{
    Baseline,
    IvbOpt,
    Bcc,
    Scc,
    NumModes,
};

constexpr unsigned kNumModes = static_cast<unsigned>(Mode::NumModes);

const char *modeName(Mode m);

/** Maximum hardware lanes per execution cycle (word-type groups). */
constexpr unsigned kMaxGroupWidth = 8;

/** Source selection for one hardware lane in one execution cycle. */
struct LaneSel
{
    std::int8_t srcGroup = -1; ///< source channel group, -1 = disabled
    std::int8_t srcLane = -1;  ///< lane within the source group

    bool enabled() const { return srcGroup >= 0; }
};

/** One execution cycle's worth of lane selections. */
struct CycleSlot
{
    std::array<LaneSel, kMaxGroupWidth> lanes{};
};

/** The full per-instruction execution schedule. */
struct CyclePlan
{
    unsigned groupWidth = 4;  ///< hardware lanes active per cycle
    unsigned numGroups = 4;   ///< channel groups in the instruction
    std::vector<CycleSlot> slots;

    unsigned cycles() const
    {
        return static_cast<unsigned>(slots.size());
    }

    /** Lanes routed away from their home position (SCC crossbar use). */
    unsigned swizzledLanes() const;

    /** Channel groups whose operand fetch is suppressed (BCC savings). */
    unsigned suppressedGroups() const
    {
        return numGroups - cycles();
    }
};

/**
 * Number of execution cycles under @p mode without materializing the
 * full plan — the fast path used by the trace analyzer.
 */
unsigned planCycleCount(Mode mode, const ExecShape &shape);

/** Builds the full execution schedule under @p mode. */
CyclePlan planCycles(Mode mode, const ExecShape &shape);

/**
 * Validates that @p plan issues every enabled channel of @p shape
 * exactly once and never issues a disabled channel.
 * @return true if the plan is a correct schedule.
 */
bool verifyPlan(const CyclePlan &plan, const ExecShape &shape);

} // namespace iwc::compaction

#endif // IWC_COMPACTION_CYCLE_PLAN_HH
