#include "compaction/mask_info.hh"

#include "common/bitutil.hh"

namespace iwc::compaction
{

UtilBin
classifyUtil(unsigned simd_width, LaneMask exec_mask)
{
    const unsigned active =
        popCount(exec_mask & laneMaskForWidth(simd_width));
    if (active == 0)
        return UtilBin::Other;
    if (simd_width == 16) {
        if (active <= 4)
            return UtilBin::S16Active1To4;
        if (active <= 8)
            return UtilBin::S16Active5To8;
        if (active <= 12)
            return UtilBin::S16Active9To12;
        return UtilBin::S16Active13To16;
    }
    if (simd_width == 8)
        return active <= 4 ? UtilBin::S8Active1To4 : UtilBin::S8Active5To8;
    return UtilBin::Other;
}

const char *
utilBinName(UtilBin bin)
{
    switch (bin) {
      case UtilBin::S16Active1To4:   return "1-4/16";
      case UtilBin::S16Active5To8:   return "5-8/16";
      case UtilBin::S16Active9To12:  return "9-12/16";
      case UtilBin::S16Active13To16: return "13-16/16";
      case UtilBin::S8Active1To4:    return "1-4/8";
      case UtilBin::S8Active5To8:    return "5-8/8";
      case UtilBin::Other:           return "other";
      case UtilBin::NumBins:         break;
    }
    return "?";
}

} // namespace iwc::compaction
