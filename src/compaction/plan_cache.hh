/**
 * @file
 * Memoization of cycle-plan results. planCycles/planScc are pure
 * functions of (Mode, ExecShape), and the execution masks an EU sees
 * repeat heavily (loop bodies replay the same divergence pattern every
 * iteration), so both the timing EU and the trace analyzer front their
 * plan queries with a PlanCache: a direct-mapped table over the full
 * mask space for SIMD widths up to 16 and a hash map for SIMD32. One
 * entry carries the per-mode cycle counts and the SCC swizzle count —
 * everything the hot paths derive from a plan — computed once from the
 * same planCycleCount/planScc code the uncached paths use, so cached
 * and uncached results are identical by construction (tested
 * exhaustively in test_cycle_plan_cache.cc).
 */

#ifndef IWC_COMPACTION_PLAN_CACHE_HH
#define IWC_COMPACTION_PLAN_CACHE_HH

#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "compaction/cycle_plan.hh"
#include "stats/stats.hh"

namespace iwc::compaction
{

/**
 * Everything the issue/analysis hot paths need from a CyclePlan. No
 * field initializers: the caches allocate whole tables of these
 * uninitialized (validity is tracked in a side bitmap) and assign
 * every field before first read.
 */
struct PlanCosts
{
    /** Execution cycles under each compaction mode. */
    std::array<std::uint16_t, kNumModes> cycles;
    /** Lanes the SCC schedule routes through the crossbar. */
    std::uint16_t sccSwizzledLanes;
};

/** See file comment. */
class PlanCache
{
  public:
    /** Plan costs for @p shape, memoized. */
    const PlanCosts &
    costs(const ExecShape &shape)
    {
        const unsigned width = shape.simdWidth;
        const LaneMask masked = shape.maskedExec();
        // One-entry front memo: straight-line runs query the same
        // shape back to back (every ALU instruction of a loop body
        // shares the mask), and the full direct-mapped tables are too
        // big to stay cache-resident. A memo hit is by construction a
        // table hit, so the hit counter stays exact.
        const std::uint64_t memo_key =
            (std::uint64_t{width} << 40) |
            (std::uint64_t{shape.elemBytes} << 32) | masked;
        if (memo_key == lastKey_) {
            ++hits_;
            return *lastCosts_;
        }
        const unsigned shift = elemShift(shape.elemBytes);
        panic_if(shift >= wide_.size() ||
                     (width <= kDirectMappedWidth &&
                      widthIndex(width) >= tables_.size()),
                 "plan cache: unsupported shape simd%u elem%u",
                 width, shape.elemBytes);
        if (width <= kDirectMappedWidth) {
            Table &table = tables_[widthIndex(width)][shift];
            if (!table.costs) {
                // Costs stay uninitialized until their valid bit is
                // set; only the 8-byte-per-512-entries bitmap is
                // zeroed, so building a per-launch cache is cheap.
                const std::size_t n = std::size_t{1} << width;
                table.costs =
                    std::make_unique_for_overwrite<PlanCosts[]>(n);
                table.valid.assign((n + 63) / 64, 0);
            }
            const LaneMask key = masked;
            std::uint64_t &word = table.valid[key >> 6];
            const std::uint64_t bit = std::uint64_t{1} << (key & 63);
            if (word & bit) {
                ++hits_;
            } else {
                table.costs[key] = sharedCosts(shape);
                word |= bit;
                ++misses_;
            }
            // The table arrays never reallocate once built, so the
            // memoized pointer stays valid for the cache's lifetime.
            lastKey_ = memo_key;
            lastCosts_ = &table.costs[key];
            return table.costs[key];
        }
        const auto [it, inserted] = wide_[shift].try_emplace(masked);
        if (inserted) {
            it->second = sharedCosts(shape);
            ++misses_;
        } else {
            ++hits_;
        }
        lastKey_ = memo_key;
        lastCosts_ = &it->second;
        return it->second;
    }

    /** Uncached reference computation (what the caches memoize). */
    static PlanCosts compute(const ExecShape &shape);

    /**
     * Credits a hit served from a caller-side memo (e.g. the per-slot
     * memo in EuCore). Such a memo only replays a pointer this cache
     * handed out, so the hit would have been a table hit anyway — the
     * counters stay exact.
     */
    void noteMemoHit() { ++hits_; }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    /** Publishes hit/miss counters into a stats group. */
    void
    writeTo(stats::Group &group) const
    {
        group.setScalar("plan_cache_hits", static_cast<double>(hits()));
        group.setScalar("plan_cache_misses",
                        static_cast<double>(misses()));
    }

  private:
    /** Widths whose whole mask space is table-indexed. */
    static constexpr unsigned kDirectMappedWidth = 16;

    /**
     * Direct-mapped costs with a side validity bitmap (see costs()
     * for why the costs array is left uninitialized).
     */
    struct Table
    {
        std::unique_ptr<PlanCosts[]> costs;
        std::vector<std::uint64_t> valid;
    };

    /**
     * Second-level lookup on an L1 miss: consults the process-wide
     * SharedPlanTable (falling through to compute() there), so plans
     * are built once per process rather than once per EU per run.
     * Out-of-line to keep the shared table's header out of this one.
     */
    static PlanCosts sharedCosts(const ExecShape &shape);

    /** Dense index for the legal SIMD widths 1/4/8/16. */
    static unsigned
    widthIndex(unsigned width)
    {
        // 1 -> 0, 4 -> 2, 8 -> 3, 16 -> 4 (width 2 unused but legal).
        return static_cast<unsigned>(std::bit_width(width) - 1);
    }

    /** log2 of the element size in bytes (2/4/8 -> 1/2/3). */
    static unsigned
    elemShift(unsigned elem_bytes)
    {
        return static_cast<unsigned>(std::bit_width(elem_bytes) - 1);
    }

    /** [widthIndex][elemShift] lazily-built direct-mapped tables. */
    std::array<std::array<Table, 4>, 5> tables_;
    /** SIMD32 masks, per element shift. */
    std::array<std::unordered_map<LaneMask, PlanCosts>, 4> wide_;
    /** Front memo: packed (width, elemBytes, mask) of the last query
     *  (0 matches no legal shape) and its stable costs pointer. */
    std::uint64_t lastKey_ = 0;
    const PlanCosts *lastCosts_ = nullptr;
    stats::Counter hits_;
    stats::Counter misses_;
};

} // namespace iwc::compaction

#endif // IWC_COMPACTION_PLAN_CACHE_HH
