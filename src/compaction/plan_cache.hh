/**
 * @file
 * Memoization of cycle-plan results. planCycles/planScc are pure
 * functions of (Mode, ExecShape), and the execution masks an EU sees
 * repeat heavily (loop bodies replay the same divergence pattern every
 * iteration), so both the timing EU and the trace analyzer front their
 * plan queries with a PlanCache: a direct-mapped table over the full
 * mask space for SIMD widths up to 16 and a hash map for SIMD32. One
 * entry carries the per-mode cycle counts and the SCC swizzle count —
 * everything the hot paths derive from a plan — computed once from the
 * same planCycleCount/planScc code the uncached paths use, so cached
 * and uncached results are identical by construction (tested
 * exhaustively in test_cycle_plan_cache.cc).
 */

#ifndef IWC_COMPACTION_PLAN_CACHE_HH
#define IWC_COMPACTION_PLAN_CACHE_HH

#include <array>
#include <bit>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "compaction/cycle_plan.hh"
#include "stats/stats.hh"

namespace iwc::compaction
{

/** Everything the issue/analysis hot paths need from a CyclePlan. */
struct PlanCosts
{
    /** Execution cycles under each compaction mode. */
    std::array<std::uint16_t, kNumModes> cycles{};
    /** Lanes the SCC schedule routes through the crossbar. */
    std::uint16_t sccSwizzledLanes = 0;
};

/** See file comment. */
class PlanCache
{
  public:
    /** Plan costs for @p shape, memoized. */
    const PlanCosts &
    costs(const ExecShape &shape)
    {
        const unsigned width = shape.simdWidth;
        const unsigned shift = elemShift(shape.elemBytes);
        panic_if(shift >= wide_.size() ||
                     (width <= kDirectMappedWidth &&
                      widthIndex(width) >= tables_.size()),
                 "plan cache: unsupported shape simd%u elem%u",
                 width, shape.elemBytes);
        if (width <= kDirectMappedWidth) {
            Table &table = tables_[widthIndex(width)][shift];
            if (table.empty())
                table.assign(std::size_t{1} << width, Entry{});
            Entry &entry = table[shape.maskedExec()];
            if (!entry.valid) {
                entry.costs = compute(shape);
                entry.valid = true;
                ++misses_;
            } else {
                ++hits_;
            }
            return entry.costs;
        }
        const auto [it, inserted] =
            wide_[shift].try_emplace(shape.maskedExec());
        if (inserted) {
            it->second = compute(shape);
            ++misses_;
        } else {
            ++hits_;
        }
        return it->second;
    }

    /** Uncached reference computation (what the cache memoizes). */
    static PlanCosts compute(const ExecShape &shape);

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    /** Publishes hit/miss counters into a stats group. */
    void
    writeTo(stats::Group &group) const
    {
        group.setScalar("plan_cache_hits", static_cast<double>(hits()));
        group.setScalar("plan_cache_misses",
                        static_cast<double>(misses()));
    }

  private:
    /** Widths whose whole mask space is table-indexed. */
    static constexpr unsigned kDirectMappedWidth = 16;

    struct Entry
    {
        PlanCosts costs;
        bool valid = false;
    };
    using Table = std::vector<Entry>;

    /** Dense index for the legal SIMD widths 1/4/8/16. */
    static unsigned
    widthIndex(unsigned width)
    {
        // 1 -> 0, 4 -> 2, 8 -> 3, 16 -> 4 (width 2 unused but legal).
        return static_cast<unsigned>(std::bit_width(width) - 1);
    }

    /** log2 of the element size in bytes (2/4/8 -> 1/2/3). */
    static unsigned
    elemShift(unsigned elem_bytes)
    {
        return static_cast<unsigned>(std::bit_width(elem_bytes) - 1);
    }

    /** [widthIndex][elemShift] lazily-built direct-mapped tables. */
    std::array<std::array<Table, 4>, 5> tables_;
    /** SIMD32 masks, per element shift. */
    std::array<std::unordered_map<LaneMask, PlanCosts>, 4> wide_;
    stats::Counter hits_;
    stats::Counter misses_;
};

} // namespace iwc::compaction

#endif // IWC_COMPACTION_PLAN_CACHE_HH
