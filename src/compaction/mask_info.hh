/**
 * @file
 * Execution-mask analysis shared by the timing model and the
 * trace-based analyzer: channel-group geometry, SIMD-efficiency
 * accounting, and the utilization bins of the paper's Figure 9.
 */

#ifndef IWC_COMPACTION_MASK_INFO_HH
#define IWC_COMPACTION_MASK_INFO_HH

#include <cstdint>

#include "common/types.hh"

namespace iwc::compaction
{

/**
 * The per-instruction facts the compaction logic consumes: SIMD width,
 * final execution mask, and the element size, which determines how
 * many channels the 16-byte ALU datapath moves per cycle.
 */
struct ExecShape
{
    std::uint8_t simdWidth = 16;
    std::uint8_t elemBytes = 4;
    LaneMask execMask = 0;

    LaneMask maskedExec() const
    {
        return execMask & laneMaskForWidth(simdWidth);
    }
};

/**
 * Channels executed per cycle for the given element size: 8 for word
 * types, 4 for dword/float, 2 for double/qword — the 16B/cycle ALU
 * datapath of Section 2.2. Never wider than the instruction itself.
 */
constexpr unsigned
groupWidth(unsigned simd_width, unsigned elem_bytes)
{
    const unsigned g = kAluDatapathBytes / elem_bytes;
    return g < simd_width ? g : simd_width;
}

/** Number of channel groups (baseline execution cycles). */
constexpr unsigned
numGroups(unsigned simd_width, unsigned elem_bytes)
{
    const unsigned g = groupWidth(simd_width, elem_bytes);
    return (simd_width + g - 1) / g;
}

/** Figure 9's SIMD utilization bins. */
enum class UtilBin : std::uint8_t
{
    S16Active1To4,   ///< SIMD16, 1-4 active lanes (3 cycles savable)
    S16Active5To8,   ///< SIMD16, 5-8 active lanes (2 cycles savable)
    S16Active9To12,  ///< SIMD16, 9-12 active lanes (1 cycle savable)
    S16Active13To16, ///< SIMD16, 13-16 active lanes (no compaction)
    S8Active1To4,    ///< SIMD8, 1-4 active lanes (1 cycle savable)
    S8Active5To8,    ///< SIMD8, 5-8 active lanes (no compaction)
    Other,           ///< other widths / no active lanes
    NumBins,
};

constexpr unsigned kNumUtilBins = static_cast<unsigned>(UtilBin::NumBins);

/** Classifies an instruction into its Figure 9 utilization bin. */
UtilBin classifyUtil(unsigned simd_width, LaneMask exec_mask);

const char *utilBinName(UtilBin bin);

} // namespace iwc::compaction

#endif // IWC_COMPACTION_MASK_INFO_HH
