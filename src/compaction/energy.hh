/**
 * @file
 * First-order dynamic-energy model for the effects Section 4.3
 * discusses qualitatively:
 *
 *  - every issued execution cycle pays a pipeline-overhead cost
 *    (clocking, sequencing) whether or not all lanes are useful —
 *    compaction removes these cycles;
 *  - every *enabled* lane-cycle pays the ALU datapath cost — identical
 *    under every mode (the same work is done);
 *  - each non-suppressed channel group pays a 128b register-file
 *    half-fetch per source operand — "with a BCC optimized register
 *    file, one can expect to save operand fetch energy"; SCC performs
 *    full-width fetches, so it saves none ("there is no operand fetch
 *    bandwidth savings for SCC");
 *  - each swizzled lane pays a crossbar-toggle cost — "SCC control
 *    logic is more complex than that of BCC, thus ... a modest
 *    increase in control logic power".
 *
 * Costs are in arbitrary units; compare ratios across modes, not
 * absolutes.
 */

#ifndef IWC_COMPACTION_ENERGY_HH
#define IWC_COMPACTION_ENERGY_HH

#include <array>
#include <cstdint>

#include "compaction/cycle_plan.hh"

namespace iwc::compaction
{

/** Per-event energy costs (arbitrary units). */
struct EnergyCosts
{
    double cycleOverhead = 4.0; ///< per issued execution cycle
    double laneActive = 1.0;    ///< per enabled lane-cycle
    double rfHalfFetch = 2.0;   ///< per 128b operand half-fetch
    double swizzle = 0.25;      ///< per lane routed off-home (SCC)
};

/** Energy breakdown for a mask stream under one mode. */
struct EnergyBreakdown
{
    double cycleOverhead = 0;
    double laneActive = 0;
    double rfFetch = 0;
    double swizzle = 0;

    double
    total() const
    {
        return cycleOverhead + laneActive + rfFetch + swizzle;
    }
};

/**
 * Streaming per-instruction energy accounting across all modes at
 * once (the mask stream is mode independent).
 */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyCosts &costs = {})
        : costs_(costs)
    {
    }

    /**
     * Accounts one ALU instruction with @p src_operands source
     * operands (fetch count scales with it).
     */
    void addAlu(const ExecShape &shape, unsigned src_operands);

    const EnergyBreakdown &
    breakdown(Mode mode) const
    {
        return perMode_[static_cast<unsigned>(mode)];
    }

    /** Energy of @p mode relative to Baseline (1.0 = no saving). */
    double relative(Mode mode) const;

  private:
    EnergyCosts costs_;
    std::array<EnergyBreakdown, kNumModes> perMode_{};
};

} // namespace iwc::compaction

#endif // IWC_COMPACTION_ENERGY_HH
