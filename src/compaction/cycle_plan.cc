#include "compaction/cycle_plan.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "compaction/scc_algorithm.hh"

namespace iwc::compaction
{

const char *
modeName(Mode m)
{
    switch (m) {
      case Mode::Baseline: return "baseline";
      case Mode::IvbOpt:   return "ivb-opt";
      case Mode::Bcc:      return "bcc";
      case Mode::Scc:      return "scc";
      case Mode::NumModes: break;
    }
    return "?";
}

unsigned
CyclePlan::swizzledLanes() const
{
    unsigned count = 0;
    for (const CycleSlot &slot : slots)
        for (unsigned n = 0; n < groupWidth; ++n)
            if (slot.lanes[n].enabled() &&
                slot.lanes[n].srcLane != static_cast<std::int8_t>(n))
                ++count;
    return count;
}

namespace
{

/**
 * True if the Ivy Bridge native optimization applies: SIMD16 with the
 * whole upper or lower half of the channels disabled (Section 5.2).
 */
bool
ivbHalfApplies(const ExecShape &shape)
{
    if (shape.simdWidth != 16)
        return false;
    const LaneMask mask = shape.maskedExec();
    const LaneMask lower = mask & 0x00ff;
    const LaneMask upper = mask & 0xff00;
    return lower == 0 || upper == 0;
}

/** Identity (no swizzle) slot for channel group @p g. */
CycleSlot
identitySlot(unsigned g, unsigned gw, LaneMask bits)
{
    CycleSlot slot;
    for (unsigned n = 0; n < gw; ++n) {
        if (bits & (LaneMask{1} << n)) {
            slot.lanes[n].srcGroup = static_cast<std::int8_t>(g);
            slot.lanes[n].srcLane = static_cast<std::int8_t>(n);
        }
    }
    return slot;
}

} // namespace

unsigned
planCycleCount(Mode mode, const ExecShape &shape)
{
    const unsigned gw = groupWidth(shape.simdWidth, shape.elemBytes);
    const unsigned n_groups = numGroups(shape.simdWidth, shape.elemBytes);
    const LaneMask mask = shape.maskedExec();

    switch (mode) {
      case Mode::Baseline:
        return n_groups;
      case Mode::IvbOpt:
        return ivbHalfApplies(shape) ? n_groups / 2 : n_groups;
      case Mode::Bcc: {
        unsigned cycles = 0;
        for (unsigned g = 0; g < n_groups; ++g)
            if (extractGroup(mask, g, gw) != 0)
                ++cycles;
        return cycles;
      }
      case Mode::Scc:
        return static_cast<unsigned>(ceilDiv(popCount(mask), gw));
      case Mode::NumModes:
        break;
    }
    panic("bad compaction mode");
}

CyclePlan
planCycles(Mode mode, const ExecShape &shape)
{
    const unsigned gw = groupWidth(shape.simdWidth, shape.elemBytes);
    const unsigned n_groups = numGroups(shape.simdWidth, shape.elemBytes);
    const LaneMask mask = shape.maskedExec();

    if (mode == Mode::Scc)
        return planScc(shape);

    CyclePlan plan;
    plan.groupWidth = gw;
    plan.numGroups = n_groups;

    switch (mode) {
      case Mode::Baseline:
        for (unsigned g = 0; g < n_groups; ++g)
            plan.slots.push_back(
                identitySlot(g, gw, extractGroup(mask, g, gw)));
        break;
      case Mode::IvbOpt: {
        const bool halved = ivbHalfApplies(shape);
        const bool lower_active = (mask & 0x00ff) != 0;
        for (unsigned g = 0; g < n_groups; ++g) {
            if (halved) {
                const bool in_lower = g < n_groups / 2;
                if (in_lower != lower_active)
                    continue; // the dead half is dropped
            }
            plan.slots.push_back(
                identitySlot(g, gw, extractGroup(mask, g, gw)));
        }
        break;
      }
      case Mode::Bcc:
        for (unsigned g = 0; g < n_groups; ++g) {
            const LaneMask bits = extractGroup(mask, g, gw);
            if (bits != 0)
                plan.slots.push_back(identitySlot(g, gw, bits));
        }
        break;
      case Mode::Scc:
      case Mode::NumModes:
        panic("unreachable");
    }
    return plan;
}

bool
verifyPlan(const CyclePlan &plan, const ExecShape &shape)
{
    const LaneMask mask = shape.maskedExec();
    LaneMask issued = 0;
    for (const CycleSlot &slot : plan.slots) {
        for (unsigned n = 0; n < plan.groupWidth; ++n) {
            const LaneSel &sel = slot.lanes[n];
            if (!sel.enabled())
                continue;
            const unsigned channel =
                static_cast<unsigned>(sel.srcGroup) * plan.groupWidth +
                static_cast<unsigned>(sel.srcLane);
            const LaneMask bit = LaneMask{1} << channel;
            if (!(mask & bit))
                return false; // issued a disabled channel
            if (issued & bit)
                return false; // issued a channel twice
            issued |= bit;
        }
    }
    return issued == mask;
}

} // namespace iwc::compaction
