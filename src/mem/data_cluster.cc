// DataCluster is header-only; this TU anchors the header into the library.
#include "mem/data_cluster.hh"
