/**
 * @file
 * The data cluster: the shared interface through which a group of EUs
 * reaches the L3 data cache, with a peak throughput of one or two
 * cache lines per cycle (the paper's DC1/DC2 configurations).
 */

#ifndef IWC_MEM_DATA_CLUSTER_HH
#define IWC_MEM_DATA_CLUSTER_HH

#include "common/types.hh"
#include "mem/resources.hh"

namespace iwc::mem
{

/** Bandwidth gate between the EUs and L3. */
class DataCluster
{
  public:
    explicit DataCluster(unsigned lines_per_cycle)
        : link_(lines_per_cycle), linesPerCycle_(lines_per_cycle)
    {
    }

    /** Cycle in which the line occupies a transfer slot. */
    Cycle transfer(Cycle now) { return link_.acquire(now); }

    std::uint64_t linesTransferred() const { return link_.slotsUsed(); }
    unsigned linesPerCycle() const { return linesPerCycle_; }

    /** Average lines per cycle over @p total_cycles (demand metric). */
    double
    throughput(Cycle total_cycles) const
    {
        return total_cycles == 0
            ? 0.0
            : static_cast<double>(link_.slotsUsed()) / total_cycles;
    }

  private:
    ThroughputResource link_;
    unsigned linesPerCycle_;
};

} // namespace iwc::mem

#endif // IWC_MEM_DATA_CLUSTER_HH
