/**
 * @file
 * Per-message memory coalescing: collapses the per-channel addresses
 * of a SIMD memory operation into the set of distinct cache lines it
 * touches. The line count per instruction is the paper's "memory
 * divergence" metric; intra-warp compaction never changes it because
 * lane swizzling happens strictly between register read and the ALU.
 */

#ifndef IWC_MEM_COALESCER_HH
#define IWC_MEM_COALESCER_HH

#include <vector>

#include "common/types.hh"
#include "func/interp.hh"

namespace iwc::mem
{

/** Distinct line-aligned addresses accessed by one memory message. */
std::vector<Addr> coalesceLines(const func::MemAccess &access);

/**
 * Same, writing into a caller-owned buffer (cleared first) so issue
 * loops can reuse one allocation across messages.
 */
void coalesceLinesInto(const func::MemAccess &access,
                       std::vector<Addr> &lines);

/**
 * SLM bank-conflict degree: the maximum number of distinct words
 * mapping to the same bank, i.e. the serialization factor of a banked
 * SLM access (1 = conflict free). Broadcasts of the same word do not
 * conflict.
 */
unsigned slmConflictDegree(const func::MemAccess &access, unsigned banks,
                           unsigned bank_word_bytes);

} // namespace iwc::mem

#endif // IWC_MEM_COALESCER_HH
