/**
 * @file
 * Bandwidth/contention primitives for the cycle-approximate memory
 * model: banked resources that accept one request per bank per cycle
 * and throughput resources that accept N requests per cycle.
 */

#ifndef IWC_MEM_RESOURCES_HH
#define IWC_MEM_RESOURCES_HH

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace iwc::mem
{

/**
 * A set of banks, each serving one request per cycle. acquire()
 * returns the cycle at which the bank actually accepts the request
 * (>= the requested cycle when the bank is backed up).
 */
class BankedResource
{
  public:
    explicit BankedResource(unsigned banks) : nextFree_(banks, 0) {}

    Cycle
    acquire(unsigned bank, Cycle now)
    {
        panic_if(bank >= nextFree_.size(), "bank %u out of range", bank);
        const Cycle slot = std::max(now, nextFree_[bank]);
        nextFree_[bank] = slot + 1;
        return slot;
    }

    unsigned numBanks() const
    {
        return static_cast<unsigned>(nextFree_.size());
    }

    void reset() { nextFree_.assign(nextFree_.size(), 0); }

  private:
    std::vector<Cycle> nextFree_;
};

/**
 * A shared link that accepts @p slotsPerCycle requests per cycle
 * (e.g. the data cluster's 1 or 2 cache lines per cycle to L3).
 */
class ThroughputResource
{
  public:
    explicit ThroughputResource(unsigned slots_per_cycle)
        : slotsPerCycle_(slots_per_cycle)
    {
        panic_if(slots_per_cycle == 0, "zero-throughput resource");
    }

    /** Returns the cycle in which the request occupies a slot. */
    Cycle
    acquire(Cycle now)
    {
        const std::uint64_t earliest = now * slotsPerCycle_;
        const std::uint64_t slot = std::max(earliest, nextSlot_);
        nextSlot_ = slot + 1;
        ++used_;
        return slot / slotsPerCycle_;
    }

    /** Total slots consumed (for throughput-demand statistics). */
    std::uint64_t slotsUsed() const { return used_; }

    void
    reset()
    {
        nextSlot_ = 0;
        used_ = 0;
    }

  private:
    unsigned slotsPerCycle_;
    std::uint64_t nextSlot_ = 0;
    std::uint64_t used_ = 0;
};

} // namespace iwc::mem

#endif // IWC_MEM_RESOURCES_HH
