// SlmTiming is header-only; this TU anchors the header into the library.
#include "mem/slm.hh"
