/**
 * @file
 * The full GPU memory hierarchy of Table 3 wired together: data
 * cluster -> banked L3 -> banked LLC -> DRAM, plus the banked SLM.
 * Latencies are computed analytically per line with bandwidth and
 * bank-contention back-pressure, so no event queue is needed.
 */

#ifndef IWC_MEM_MEM_SYSTEM_HH
#define IWC_MEM_MEM_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/types.hh"
#include "func/interp.hh"
#include "mem/cache.hh"
#include "mem/data_cluster.hh"
#include "mem/dram.hh"
#include "mem/resources.hh"
#include "mem/slm.hh"

namespace iwc::mem
{

/** Memory-hierarchy parameters (defaults are the paper's Table 3). */
struct MemConfig
{
    std::uint64_t l3Bytes = 128 * 1024;
    unsigned l3Ways = 64;
    unsigned l3Banks = 4;
    Cycle l3Latency = 7;

    std::uint64_t llcBytes = 2 * 1024 * 1024;
    unsigned llcWays = 16;
    unsigned llcBanks = 8;
    Cycle llcLatency = 10;

    /** Data cluster peak lines per cycle (DC1 = 1, DC2 = 2). */
    unsigned dcLinesPerCycle = 1;

    Cycle dramLatency = 120;
    unsigned dramCyclesPerLine = 4;

    Cycle slmLatency = 5;
    unsigned slmBanks = 16;
    unsigned slmBankBytes = 4;

    /** Model an infinite L3 (the paper's "perfect L3" experiment). */
    bool perfectL3 = false;
};

/** Outcome of one global-memory message. */
struct MemResult
{
    Cycle completion = 0;
    unsigned lines = 0;
    unsigned l3Misses = 0;
    unsigned llcMisses = 0;
};

/** See file comment. */
class MemSystem
{
  public:
    explicit MemSystem(const MemConfig &config);

    /**
     * Issues one coalesced global-memory message (its distinct cache
     * lines) at cycle @p now; returns when the last line completes.
     */
    MemResult accessGlobal(const std::vector<Addr> &lines, bool is_write,
                           Cycle now);

    /** Issues one SLM message; returns its completion cycle. */
    Cycle accessSlm(const func::MemAccess &acc, Cycle now);

    /** As accessSlm with the conflict degree precomputed (replay). */
    Cycle accessSlmDegree(unsigned degree, Cycle now);

    /** Conflict degree @p acc would serialize by (capture). */
    unsigned slmConflictDegreeOf(const func::MemAccess &acc) const;

    const Cache &l3() const { return *l3_; }
    const Cache &llc() const { return *llc_; }
    const DataCluster &dataCluster() const { return *dc_; }
    const DramModel &dram() const { return *dram_; }
    const SlmTiming &slm() const { return *slm_; }
    const MemConfig &config() const { return config_; }

    std::uint64_t messages() const { return messages_; }
    std::uint64_t totalLines() const { return totalLines_; }

    /** Memory divergence: average distinct lines per message. */
    double
    avgLinesPerMessage() const
    {
        return messages_ ? static_cast<double>(totalLines_) / messages_
                         : 0.0;
    }

  private:
    MemConfig config_;
    std::unique_ptr<Cache> l3_;
    std::unique_ptr<Cache> llc_;
    std::unique_ptr<DataCluster> dc_;
    std::unique_ptr<DramModel> dram_;
    std::unique_ptr<SlmTiming> slm_;
    BankedResource l3Banks_;
    BankedResource llcBanks_;
    std::uint64_t messages_ = 0;
    std::uint64_t totalLines_ = 0;
};

} // namespace iwc::mem

#endif // IWC_MEM_MEM_SYSTEM_HH
