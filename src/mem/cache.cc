#include "mem/cache.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace iwc::mem
{

Cache::Cache(std::string name, std::uint64_t size_bytes, unsigned ways)
    : name_(std::move(name)), ways_(ways)
{
    const std::uint64_t num_lines = size_bytes / kCacheLineBytes;
    fatal_if(ways == 0 || num_lines == 0 || num_lines % ways != 0,
             "cache %s: bad geometry (%llu bytes, %u ways)", name_.c_str(),
             static_cast<unsigned long long>(size_bytes), ways);
    numSets_ = static_cast<unsigned>(num_lines / ways);
    fatal_if(!isPow2(numSets_), "cache %s: set count must be power of 2",
             name_.c_str());
    lines_.resize(num_lines);
}

CacheAccessResult
Cache::access(Addr line_addr, bool is_write, Cycle now)
{
    CacheAccessResult result;
    const Addr line_num = line_addr / kCacheLineBytes;
    const unsigned set = static_cast<unsigned>(line_num & (numSets_ - 1));
    const Addr tag = line_num >> log2i(numSets_);
    Line *base = &lines_[static_cast<std::size_t>(set) * ways_];

    ++useClock_;
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            // A tag match on a line whose fill is still in flight is a
            // merged miss: it completes with the original fill.
            const auto pending = pendingFills_.find(line_addr);
            if (pending != pendingFills_.end()) {
                if (pending->second > now) {
                    result.mergedMiss = true;
                    result.fillReady = pending->second;
                } else {
                    pendingFills_.erase(pending);
                }
            }
            result.hit = !result.mergedMiss;
            if (result.hit)
                ++hits_;
            line.lastUse = useClock_;
            line.dirty = line.dirty || is_write;
            return result;
        }
    }

    // Miss: allocate (write-allocate policy), evicting the LRU way.
    ++misses_;
    Line *victim = base;
    for (unsigned w = 1; w < ways_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    if (victim->valid) {
        ++evictions_;
        if (victim->dirty) {
            ++dirtyEvictions_;
            result.dirtyEviction = true;
        }
        // Forget any stale pending fill for the evicted line.
        const Addr old_line =
            ((victim->tag << log2i(numSets_)) | set) * kCacheLineBytes;
        pendingFills_.erase(old_line);
    }
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = is_write;
    victim->lastUse = useClock_;
    return result;
}

void
Cache::noteFill(Addr line_addr, Cycle ready_at)
{
    pendingFills_[line_addr] = ready_at;
}

void
Cache::flush()
{
    for (Line &line : lines_)
        line = Line{};
    pendingFills_.clear();
}

} // namespace iwc::mem
