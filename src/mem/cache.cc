#include "mem/cache.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace iwc::mem
{

Cache::Cache(std::string name, std::uint64_t size_bytes, unsigned ways)
    : name_(std::move(name)), ways_(ways)
{
    const std::uint64_t num_lines = size_bytes / kCacheLineBytes;
    fatal_if(ways == 0 || num_lines == 0 || num_lines % ways != 0,
             "cache %s: bad geometry (%llu bytes, %u ways)", name_.c_str(),
             static_cast<unsigned long long>(size_bytes), ways);
    numSets_ = static_cast<unsigned>(num_lines / ways);
    fatal_if(!isPow2(numSets_), "cache %s: set count must be power of 2",
             name_.c_str());
    tagShift_ = log2i(numSets_);
    tags_.assign(num_lines, kInvalidTag);
    fillReady_.assign(num_lines, 0);
    lastUse_.assign(num_lines, 0);
    dirty_.assign(num_lines, 0);
}

CacheAccessResult
Cache::access(Addr line_addr, bool is_write, Cycle now)
{
    CacheAccessResult result;
    const Addr line_num = line_addr / kCacheLineBytes;
    const unsigned set = static_cast<unsigned>(line_num & (numSets_ - 1));
    const Addr wide_tag = line_num >> tagShift_;
    fatal_if(wide_tag >= kInvalidTag,
             "cache %s: address 0x%llx beyond the 32-bit tag range",
             name_.c_str(), static_cast<unsigned long long>(line_addr));
    const std::uint32_t tag = static_cast<std::uint32_t>(wide_tag);
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    const std::uint32_t *tags = &tags_[base];

    ++useClock_;
    // A tag lives in at most one way of its set, so OR-ing (way + 1)
    // over every matching way finds the hit without an early exit —
    // the loop carries no control dependence and vectorizes.
    unsigned match = 0;
    for (unsigned w = 0; w < ways_; ++w)
        match |= tags[w] == tag ? w + 1 : 0;
    if (match != 0) {
        const std::size_t idx = base + (match - 1);
        // A tag match on a line whose fill is still in flight is a
        // merged miss: it completes with the original fill.
        if (fillReady_[idx] > now) {
            result.mergedMiss = true;
            result.fillReady = fillReady_[idx];
        }
        result.hit = !result.mergedMiss;
        if (result.hit)
            ++hits_;
        lastUse_[idx] = useClock_;
        dirty_[idx] |= static_cast<std::uint8_t>(is_write);
        return result;
    }

    // Miss: allocate (write-allocate policy), evicting the LRU way.
    ++misses_;
    unsigned victim = 0;
    for (unsigned w = 1; w < ways_; ++w) {
        if (tags[w] == kInvalidTag) {
            victim = w;
            break;
        }
        if (lastUse_[base + w] < lastUse_[base + victim])
            victim = w;
    }
    if (tags[victim] != kInvalidTag) {
        ++evictions_;
        if (dirty_[base + victim] != 0) {
            ++dirtyEvictions_;
            result.dirtyEviction = true;
        }
    }
    tags_[base + victim] = tag;
    dirty_[base + victim] = static_cast<std::uint8_t>(is_write);
    lastUse_[base + victim] = useClock_;
    fillReady_[base + victim] = 0; // eviction forgets the old line's fill
    return result;
}

void
Cache::noteFill(Addr line_addr, Cycle ready_at)
{
    const Addr line_num = line_addr / kCacheLineBytes;
    const unsigned set = static_cast<unsigned>(line_num & (numSets_ - 1));
    const std::uint32_t tag =
        static_cast<std::uint32_t>(line_num >> tagShift_);
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        if (tags_[base + w] == tag) {
            fillReady_[base + w] = ready_at;
            return;
        }
    }
}

void
Cache::flush()
{
    tags_.assign(tags_.size(), kInvalidTag);
    fillReady_.assign(fillReady_.size(), 0);
    lastUse_.assign(lastUse_.size(), 0);
    dirty_.assign(dirty_.size(), 0);
}

} // namespace iwc::mem
