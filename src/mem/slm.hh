/**
 * @file
 * Timing model of the banked shared local memory: fixed access
 * latency plus serialization for bank conflicts (Table 3: 64KB SLM,
 * 5-cycle latency; 16 banks of 4-byte words assumed).
 */

#ifndef IWC_MEM_SLM_HH
#define IWC_MEM_SLM_HH

#include "common/types.hh"
#include "func/interp.hh"
#include "mem/coalescer.hh"

namespace iwc::mem
{

/** Timing-only model; functional SLM contents live in func::SlmMemory. */
class SlmTiming
{
  public:
    SlmTiming(Cycle latency, unsigned banks, unsigned bank_word_bytes)
        : latency_(latency), banks_(banks),
          bankWordBytes_(bank_word_bytes)
    {
    }

    /** Completion cycle of a banked SLM access issued at @p now. */
    Cycle
    access(const func::MemAccess &acc, Cycle now)
    {
        return access(slmConflictDegree(acc, banks_, bankWordBytes_),
                      now);
    }

    /**
     * As access(), but with the conflict degree already known — the
     * issue-trace replay path, which records the degree (a pure
     * function of the access's addresses) instead of the addresses.
     */
    Cycle
    access(unsigned degree, Cycle now)
    {
        ++accesses_;
        conflictCycles_ += degree - 1;
        return now + latency_ + (degree - 1);
    }

    /** Conflict degree of @p acc (what access() would serialize by). */
    unsigned
    conflictDegree(const func::MemAccess &acc) const
    {
        return slmConflictDegree(acc, banks_, bankWordBytes_);
    }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t conflictCycles() const { return conflictCycles_; }

  private:
    Cycle latency_;
    unsigned banks_;
    unsigned bankWordBytes_;
    std::uint64_t accesses_ = 0;
    std::uint64_t conflictCycles_ = 0;
};

} // namespace iwc::mem

#endif // IWC_MEM_SLM_HH
