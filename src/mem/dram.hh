/**
 * @file
 * Main-memory model: fixed access latency plus a line-granular
 * bandwidth limit (one cache line per N cycles), standing in for the
 * DDR3 controller behind the LLC.
 */

#ifndef IWC_MEM_DRAM_HH
#define IWC_MEM_DRAM_HH

#include <algorithm>

#include "common/types.hh"

namespace iwc::mem
{

/** Latency/bandwidth model of the memory controller + DRAM. */
class DramModel
{
  public:
    DramModel(Cycle latency, unsigned cycles_per_line)
        : latency_(latency), cyclesPerLine_(cycles_per_line)
    {
    }

    /** Completion cycle of a line fetch entering DRAM at @p now. */
    Cycle
    access(Cycle now)
    {
        const Cycle start = std::max(now, nextSlot_);
        nextSlot_ = start + cyclesPerLine_;
        ++lines_;
        return start + latency_;
    }

    std::uint64_t linesTransferred() const { return lines_; }

  private:
    Cycle latency_;
    unsigned cyclesPerLine_;
    Cycle nextSlot_ = 0;
    std::uint64_t lines_ = 0;
};

} // namespace iwc::mem

#endif // IWC_MEM_DRAM_HH
