#include "mem/coalescer.hh"

#include <algorithm>

#include "common/bitutil.hh"

namespace iwc::mem
{

std::vector<Addr>
coalesceLines(const func::MemAccess &access)
{
    std::vector<Addr> lines;
    coalesceLinesInto(access, lines);
    return lines;
}

void
coalesceLinesInto(const func::MemAccess &access, std::vector<Addr> &lines)
{
    lines.clear();
    if (access.isBlock) {
        const Addr first = alignDown(access.blockAddr, kCacheLineBytes);
        const Addr last = alignDown(
            access.blockAddr + access.blockBytes - 1, kCacheLineBytes);
        for (Addr a = first; a <= last; a += kCacheLineBytes)
            lines.push_back(a);
        return;
    }

    for (unsigned ch = 0; ch < kMaxSimdWidth; ++ch) {
        if (!(access.mask & (LaneMask{1} << ch)))
            continue;
        const Addr first =
            alignDown(access.addrs[ch], kCacheLineBytes);
        const Addr last = alignDown(
            access.addrs[ch] + access.elemBytes - 1, kCacheLineBytes);
        for (Addr a = first; a <= last; a += kCacheLineBytes)
            lines.push_back(a);
    }
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
}

unsigned
slmConflictDegree(const func::MemAccess &access, unsigned banks,
                  unsigned bank_word_bytes)
{
    // At most one distinct word per channel, so dedup on the stack
    // instead of materializing per-bank vectors.
    Addr words[kMaxSimdWidth];
    unsigned word_banks[kMaxSimdWidth];
    unsigned n = 0;
    for (unsigned ch = 0; ch < kMaxSimdWidth; ++ch) {
        if (!(access.mask & (LaneMask{1} << ch)))
            continue;
        const Addr word = access.addrs[ch] / bank_word_bytes;
        bool seen = false;
        for (unsigned i = 0; i < n; ++i) {
            if (words[i] == word) {
                seen = true;
                break;
            }
        }
        if (seen)
            continue;
        words[n] = word;
        word_banks[n] = static_cast<unsigned>(word % banks);
        ++n;
    }
    unsigned degree = 1;
    for (unsigned i = 0; i < n; ++i) {
        unsigned same_bank = 0;
        for (unsigned j = 0; j < n; ++j)
            same_bank += word_banks[j] == word_banks[i];
        degree = std::max(degree, same_bank);
    }
    return degree;
}

} // namespace iwc::mem
