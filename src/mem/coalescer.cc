#include "mem/coalescer.hh"

#include <algorithm>

#include "common/bitutil.hh"

namespace iwc::mem
{

std::vector<Addr>
coalesceLines(const func::MemAccess &access)
{
    std::vector<Addr> lines;
    if (access.isBlock) {
        const Addr first = alignDown(access.blockAddr, kCacheLineBytes);
        const Addr last = alignDown(
            access.blockAddr + access.blockBytes - 1, kCacheLineBytes);
        for (Addr a = first; a <= last; a += kCacheLineBytes)
            lines.push_back(a);
        return lines;
    }

    for (unsigned ch = 0; ch < kMaxSimdWidth; ++ch) {
        if (!(access.mask & (LaneMask{1} << ch)))
            continue;
        const Addr first =
            alignDown(access.addrs[ch], kCacheLineBytes);
        const Addr last = alignDown(
            access.addrs[ch] + access.elemBytes - 1, kCacheLineBytes);
        for (Addr a = first; a <= last; a += kCacheLineBytes)
            lines.push_back(a);
    }
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    return lines;
}

unsigned
slmConflictDegree(const func::MemAccess &access, unsigned banks,
                  unsigned bank_word_bytes)
{
    std::vector<std::vector<Addr>> bank_words(banks);
    for (unsigned ch = 0; ch < kMaxSimdWidth; ++ch) {
        if (!(access.mask & (LaneMask{1} << ch)))
            continue;
        const Addr word = access.addrs[ch] / bank_word_bytes;
        const unsigned bank = static_cast<unsigned>(word % banks);
        auto &words = bank_words[bank];
        if (std::find(words.begin(), words.end(), word) == words.end())
            words.push_back(word);
    }
    unsigned degree = 1;
    for (const auto &words : bank_words)
        degree = std::max(degree,
                          static_cast<unsigned>(words.size()));
    return degree;
}

} // namespace iwc::mem
