#include "mem/mem_system.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace iwc::mem
{

MemSystem::MemSystem(const MemConfig &config)
    : config_(config),
      l3_(std::make_unique<Cache>("l3", config.l3Bytes, config.l3Ways)),
      llc_(std::make_unique<Cache>("llc", config.llcBytes,
                                   config.llcWays)),
      dc_(std::make_unique<DataCluster>(config.dcLinesPerCycle)),
      dram_(std::make_unique<DramModel>(config.dramLatency,
                                        config.dramCyclesPerLine)),
      slm_(std::make_unique<SlmTiming>(config.slmLatency, config.slmBanks,
                                       config.slmBankBytes)),
      l3Banks_(config.l3Banks), llcBanks_(config.llcBanks)
{
}

MemResult
MemSystem::accessGlobal(const std::vector<Addr> &lines, bool is_write,
                        Cycle now)
{
    MemResult result;
    result.lines = static_cast<unsigned>(lines.size());
    ++messages_;
    totalLines_ += lines.size();

    for (const Addr line : lines) {
        // 1. Cross the data cluster (shared bandwidth).
        const Cycle dc_cycle = dc_->transfer(now);

        // 2. L3 bank arbitration + lookup.
        const unsigned l3_bank = static_cast<unsigned>(
            (line / kCacheLineBytes) % l3Banks_.numBanks());
        const Cycle l3_start = l3Banks_.acquire(l3_bank, dc_cycle);
        const Cycle l3_done = l3_start + config_.l3Latency;

        const CacheAccessResult l3 =
            config_.perfectL3
                ? CacheAccessResult{true, false, 0, false}
                : l3_->access(line, is_write, l3_start);
        Cycle line_done;
        if (l3.hit) {
            line_done = l3_done;
        } else if (l3.mergedMiss) {
            line_done = std::max(l3.fillReady, l3_done);
        } else {
            ++result.l3Misses;
            // 3. LLC bank arbitration + lookup.
            const unsigned llc_bank = static_cast<unsigned>(
                (line / kCacheLineBytes) % llcBanks_.numBanks());
            const Cycle llc_start = llcBanks_.acquire(llc_bank, l3_done);
            const Cycle llc_done = llc_start + config_.llcLatency;
            const CacheAccessResult llc =
                llc_->access(line, false, llc_start);
            if (llc.hit) {
                line_done = llc_done;
            } else if (llc.mergedMiss) {
                line_done = std::max(llc.fillReady, llc_done);
            } else {
                ++result.llcMisses;
                // 4. DRAM latency + bandwidth.
                line_done = dram_->access(llc_done);
                // Dirty evictions consume DRAM write bandwidth.
                if (llc.dirtyEviction)
                    dram_->access(llc_done);
                llc_->noteFill(line, line_done);
            }
            if (!config_.perfectL3)
                l3_->noteFill(line, line_done);
        }
        result.completion = std::max(result.completion, line_done);
    }
    return result;
}

Cycle
MemSystem::accessSlm(const func::MemAccess &acc, Cycle now)
{
    return slm_->access(acc, now);
}

Cycle
MemSystem::accessSlmDegree(unsigned degree, Cycle now)
{
    return slm_->access(degree, now);
}

unsigned
MemSystem::slmConflictDegreeOf(const func::MemAccess &acc) const
{
    return slm_->conflictDegree(acc);
}

} // namespace iwc::mem
