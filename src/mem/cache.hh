/**
 * @file
 * Set-associative write-back cache tag model with LRU replacement and
 * outstanding-miss (MSHR) merging. Only tags are modelled; data lives
 * in the functional memory, so the timing model never copies bytes.
 */

#ifndef IWC_MEM_CACHE_HH
#define IWC_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace iwc::mem
{

/** Outcome of a cache access. */
struct CacheAccessResult
{
    bool hit = false;
    bool mergedMiss = false;  ///< matched an in-flight fill (MSHR hit)
    Cycle fillReady = 0;      ///< for merged misses: when the fill lands
    bool dirtyEviction = false;
};

/** Tag-only set-associative cache with per-set LRU. */
class Cache
{
  public:
    Cache(std::string name, std::uint64_t size_bytes, unsigned ways);

    /**
     * Looks up @p line_addr (line-aligned). On a miss the line is
     * allocated immediately (fill completion is tracked separately via
     * noteFill). Writes mark the line dirty.
     */
    CacheAccessResult access(Addr line_addr, bool is_write, Cycle now);

    /** Registers when the fill for a missed line completes. */
    void noteFill(Addr line_addr, Cycle ready_at);

    /** Drops every line (between-kernel flush). */
    void flush();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t dirtyEvictions() const { return dirtyEvictions_; }

    double
    hitRate() const
    {
        const std::uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(hits_) / total : 0.0;
    }

    unsigned numSets() const { return numSets_; }
    const std::string &name() const { return name_; }

  private:
    /**
     * Tag value no real line can carry, doubling as the invalid marker
     * so the hot tag scan is a single compare per way. Tags are stored
     * narrowed to 32 bits — access() checks the real tag fits below
     * this marker, which holds for any address under 8 TiB with the
     * smallest modelled set count — so a 64-way scan reads 256
     * contiguous bytes and vectorizes to a handful of SIMD compares.
     */
    static constexpr std::uint32_t kInvalidTag = ~std::uint32_t{0};

    // Line state is stored as parallel arrays (all numSets_ x ways_,
    // line i of set s at index s * ways_ + i) rather than an array of
    // structs: the tag scan of a 64-way set then touches only
    // contiguous tags instead of striding 2 KiB of line records, and
    // the LRU victim scan reads only the use clocks. The MSHR state
    // (fillReady, see CacheAccessResult::fillReady) keeps the original
    // meaning: a value <= the access cycle means the fill has landed
    // and the line is a plain hit; eviction resets it, so no separate
    // outstanding-miss table is needed.
    std::string name_;
    unsigned ways_;
    unsigned numSets_;
    unsigned tagShift_ = 0; ///< log2(numSets_), hoisted out of access()
    std::vector<std::uint32_t> tags_; ///< kInvalidTag marks an invalid line
    std::vector<Cycle> fillReady_;
    std::vector<std::uint64_t> lastUse_;
    std::vector<std::uint8_t> dirty_;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t dirtyEvictions_ = 0;
};

} // namespace iwc::mem

#endif // IWC_MEM_CACHE_HH
