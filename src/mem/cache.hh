/**
 * @file
 * Set-associative write-back cache tag model with LRU replacement and
 * outstanding-miss (MSHR) merging. Only tags are modelled; data lives
 * in the functional memory, so the timing model never copies bytes.
 */

#ifndef IWC_MEM_CACHE_HH
#define IWC_MEM_CACHE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace iwc::mem
{

/** Outcome of a cache access. */
struct CacheAccessResult
{
    bool hit = false;
    bool mergedMiss = false;  ///< matched an in-flight fill (MSHR hit)
    Cycle fillReady = 0;      ///< for merged misses: when the fill lands
    bool dirtyEviction = false;
};

/** Tag-only set-associative cache with per-set LRU. */
class Cache
{
  public:
    Cache(std::string name, std::uint64_t size_bytes, unsigned ways);

    /**
     * Looks up @p line_addr (line-aligned). On a miss the line is
     * allocated immediately (fill completion is tracked separately via
     * noteFill). Writes mark the line dirty.
     */
    CacheAccessResult access(Addr line_addr, bool is_write, Cycle now);

    /** Registers when the fill for a missed line completes. */
    void noteFill(Addr line_addr, Cycle ready_at);

    /** Drops every line (between-kernel flush). */
    void flush();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t dirtyEvictions() const { return dirtyEvictions_; }

    double
    hitRate() const
    {
        const std::uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(hits_) / total : 0.0;
    }

    unsigned numSets() const { return numSets_; }
    const std::string &name() const { return name_; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    std::string name_;
    unsigned ways_;
    unsigned numSets_;
    std::vector<Line> lines_; ///< numSets_ x ways_
    std::unordered_map<Addr, Cycle> pendingFills_;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t dirtyEvictions_ = 0;
};

} // namespace iwc::mem

#endif // IWC_MEM_CACHE_HH
