// DramModel is header-only; this TU anchors the header into the library.
#include "mem/dram.hh"
