/**
 * @file
 * Kernel container: the instruction stream plus the dispatch-time
 * register preload convention and argument metadata.
 *
 * Register preload convention (mirrors Gen thread payload):
 *   r0        header: dw0 = flat workgroup id, dw1 = subgroup index
 *             within the group, dw2 = local size (work items per group),
 *             dw3 = global size, dw4 = number of groups, dw5 = subgroups
 *             per group, dw6 = SLM size in bytes, dw7 = flat global
 *             subgroup index.
 *   r1..      per-channel global linear work-item id (UD vector,
 *             ceil(simdWidth*4/32) registers).
 *   next..    per-channel local work-item id within the group (UD
 *             vector, same register count).
 *   next..    kernel arguments, one full register each, element 0 holds
 *             the value (scalars and buffer base addresses are UD/D/F).
 *   next..    free for temporaries (managed by the builder).
 */

#ifndef IWC_ISA_KERNEL_HH
#define IWC_ISA_KERNEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace iwc::isa
{

/** Kind of a kernel argument. */
enum class ArgKind : std::uint8_t
{
    Buffer,  ///< global memory buffer base address (UD)
    ScalarU, ///< 32-bit unsigned scalar
    ScalarI, ///< 32-bit signed scalar
    ScalarF, ///< 32-bit float scalar
};

/** Metadata for one kernel argument. */
struct ArgInfo
{
    std::string name;
    ArgKind kind = ArgKind::ScalarU;
    std::uint8_t reg = 0; ///< GRF register the argument is preloaded into
};

/**
 * An executable kernel: a validated instruction stream with its SIMD
 * width and preload/argument layout.
 */
class Kernel
{
  public:
    Kernel() = default;
    Kernel(std::string name, unsigned simd_width,
           std::vector<Instruction> instructions, std::vector<ArgInfo> args,
           unsigned first_temp_reg, unsigned regs_used,
           unsigned slm_bytes = 0);

    const std::string &name() const { return name_; }
    unsigned simdWidth() const { return simdWidth_; }
    const std::vector<Instruction> &instructions() const { return instrs_; }
    const Instruction &instr(std::uint32_t ip) const { return instrs_[ip]; }
    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(instrs_.size());
    }

    const std::vector<ArgInfo> &args() const { return args_; }
    unsigned numArgs() const { return static_cast<unsigned>(args_.size()); }

    /** First GRF register available for temporaries. */
    unsigned firstTempReg() const { return firstTempReg_; }

    /** Highest GRF register used plus one. */
    unsigned regsUsed() const { return regsUsed_; }

    /** Shared-local-memory bytes required per workgroup. */
    unsigned slmBytes() const { return slmBytes_; }

    /** Number of GRF registers holding one UD per-channel vector. */
    unsigned
    idRegCount() const
    {
        return (simdWidth_ * 4 + kGrfRegBytes - 1) / kGrfRegBytes;
    }

    /** Register holding per-channel global work-item ids. */
    unsigned globalIdReg() const { return 1; }

    /** Register holding per-channel local work-item ids. */
    unsigned localIdReg() const { return 1 + idRegCount(); }

    /**
     * Structural validation: branch targets in range and consistent,
     * operand registers within the GRF, widths legal. Calls fatal() on
     * violation (a malformed kernel is a user error).
     */
    void validate() const;

    /**
     * Stable 64-bit digest of everything that determines execution:
     * SIMD width, every instruction field, argument layout, and SLM
     * size (the display name is excluded). Serialized field-by-field,
     * so the value is independent of struct padding and identical
     * across builds — usable as the kernel half of a service cache
     * key and as a wire-level identity check.
     */
    std::uint64_t digest() const;

  private:
    std::string name_;
    unsigned simdWidth_ = 16;
    std::vector<Instruction> instrs_;
    std::vector<ArgInfo> args_;
    unsigned firstTempReg_ = 0;
    unsigned regsUsed_ = 0;
    unsigned slmBytes_ = 0;
};

} // namespace iwc::isa

#endif // IWC_ISA_KERNEL_HH
