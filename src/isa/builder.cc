#include "isa/builder.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace iwc::isa
{

KernelBuilder::KernelBuilder(std::string name, unsigned simd_width)
    : name_(std::move(name)), simdWidth_(simd_width)
{
    fatal_if(simd_width != 8 && simd_width != 16 && simd_width != 32,
             "kernel %s: SIMD width must be 8, 16, or 32", name_.c_str());
    // r0 header + global-id vector + local-id vector.
    const unsigned id_regs = ceilDiv(simd_width * 4, kGrfRegBytes);
    nextReg_ = 1 + 2 * id_regs;
    firstTempReg_ = nextReg_;
}

Operand
KernelBuilder::argBuffer(const std::string &name)
{
    fatal_if(argsFrozen_, "kernel %s: declare args before temporaries",
             name_.c_str());
    args_.push_back({name, ArgKind::Buffer,
                     static_cast<std::uint8_t>(nextReg_)});
    return grfScalar(nextReg_++, DataType::UD);
}

Operand
KernelBuilder::argU(const std::string &name)
{
    fatal_if(argsFrozen_, "kernel %s: declare args before temporaries",
             name_.c_str());
    args_.push_back({name, ArgKind::ScalarU,
                     static_cast<std::uint8_t>(nextReg_)});
    return grfScalar(nextReg_++, DataType::UD);
}

Operand
KernelBuilder::argI(const std::string &name)
{
    fatal_if(argsFrozen_, "kernel %s: declare args before temporaries",
             name_.c_str());
    args_.push_back({name, ArgKind::ScalarI,
                     static_cast<std::uint8_t>(nextReg_)});
    return grfScalar(nextReg_++, DataType::D);
}

Operand
KernelBuilder::argF(const std::string &name)
{
    fatal_if(argsFrozen_, "kernel %s: declare args before temporaries",
             name_.c_str());
    args_.push_back({name, ArgKind::ScalarF,
                     static_cast<std::uint8_t>(nextReg_)});
    return grfScalar(nextReg_++, DataType::F);
}

Operand
KernelBuilder::globalId() const
{
    return grfOperand(1, DataType::UD);
}

Operand
KernelBuilder::localId() const
{
    const unsigned id_regs = ceilDiv(simdWidth_ * 4, kGrfRegBytes);
    return grfOperand(1 + id_regs, DataType::UD);
}

Operand
KernelBuilder::groupId() const
{
    return grfScalar(0, DataType::UD, 0);
}

Operand
KernelBuilder::subgroupIndex() const
{
    return grfScalar(0, DataType::UD, 1);
}

Operand
KernelBuilder::localSize() const
{
    return grfScalar(0, DataType::UD, 2);
}

Operand
KernelBuilder::globalSize() const
{
    return grfScalar(0, DataType::UD, 3);
}

Operand
KernelBuilder::numGroups() const
{
    return grfScalar(0, DataType::UD, 4);
}

Reg
KernelBuilder::tmp(DataType type)
{
    if (!argsFrozen_) {
        argsFrozen_ = true;
        firstTempReg_ = nextReg_;
    }
    const unsigned regs =
        ceilDiv(simdWidth_ * dataTypeSize(type), kGrfRegBytes);
    fatal_if(nextReg_ + regs > kGrfRegCount,
             "kernel %s: out of GRF registers", name_.c_str());
    const Reg r{static_cast<std::uint8_t>(nextReg_), type};
    nextReg_ += regs;
    return r;
}

unsigned
KernelBuilder::allocRaw(unsigned count)
{
    if (!argsFrozen_) {
        argsFrozen_ = true;
        firstTempReg_ = nextReg_;
    }
    fatal_if(nextReg_ + count > kGrfRegCount,
             "kernel %s: out of GRF registers", name_.c_str());
    const unsigned base = nextReg_;
    nextReg_ += count;
    return base;
}

Instruction &
KernelBuilder::emit(Opcode op)
{
    instrs_.emplace_back();
    Instruction &in = instrs_.back();
    in.op = op;
    in.simdWidth = static_cast<std::uint8_t>(simdWidth_);
    return in;
}

InstrRef
KernelBuilder::emit3(Opcode op, const Operand &d, const Operand &a,
                     const Operand &b, const Operand &c)
{
    Instruction &in = emit(op);
    in.dst = d;
    in.src0 = a;
    in.src1 = b;
    in.src2 = c;
    return InstrRef(in);
}

InstrRef
KernelBuilder::mov(const Operand &dst, const Operand &src)
{
    return emit3(Opcode::Mov, dst, src, nullOperand(), nullOperand());
}

InstrRef
KernelBuilder::add(const Operand &d, const Operand &a, const Operand &b)
{
    return emit3(Opcode::Add, d, a, b, nullOperand());
}

InstrRef
KernelBuilder::sub(const Operand &d, const Operand &a, const Operand &b)
{
    return emit3(Opcode::Sub, d, a, b, nullOperand());
}

InstrRef
KernelBuilder::mul(const Operand &d, const Operand &a, const Operand &b)
{
    return emit3(Opcode::Mul, d, a, b, nullOperand());
}

InstrRef
KernelBuilder::mad(const Operand &d, const Operand &a, const Operand &b,
                   const Operand &c)
{
    return emit3(Opcode::Mad, d, a, b, c);
}

InstrRef
KernelBuilder::min_(const Operand &d, const Operand &a, const Operand &b)
{
    return emit3(Opcode::Min, d, a, b, nullOperand());
}

InstrRef
KernelBuilder::max_(const Operand &d, const Operand &a, const Operand &b)
{
    return emit3(Opcode::Max, d, a, b, nullOperand());
}

InstrRef
KernelBuilder::and_(const Operand &d, const Operand &a, const Operand &b)
{
    return emit3(Opcode::And, d, a, b, nullOperand());
}

InstrRef
KernelBuilder::or_(const Operand &d, const Operand &a, const Operand &b)
{
    return emit3(Opcode::Or, d, a, b, nullOperand());
}

InstrRef
KernelBuilder::xor_(const Operand &d, const Operand &a, const Operand &b)
{
    return emit3(Opcode::Xor, d, a, b, nullOperand());
}

InstrRef
KernelBuilder::not_(const Operand &d, const Operand &a)
{
    return emit3(Opcode::Not, d, a, nullOperand(), nullOperand());
}

InstrRef
KernelBuilder::shl(const Operand &d, const Operand &a, const Operand &b)
{
    return emit3(Opcode::Shl, d, a, b, nullOperand());
}

InstrRef
KernelBuilder::shr(const Operand &d, const Operand &a, const Operand &b)
{
    return emit3(Opcode::Shr, d, a, b, nullOperand());
}

InstrRef
KernelBuilder::asr(const Operand &d, const Operand &a, const Operand &b)
{
    return emit3(Opcode::Asr, d, a, b, nullOperand());
}

InstrRef
KernelBuilder::rndd(const Operand &d, const Operand &a)
{
    return emit3(Opcode::Rndd, d, a, nullOperand(), nullOperand());
}

InstrRef
KernelBuilder::frc(const Operand &d, const Operand &a)
{
    return emit3(Opcode::Frc, d, a, nullOperand(), nullOperand());
}

InstrRef
KernelBuilder::cmp(CondMod cond, unsigned flag, const Operand &a,
                   const Operand &b)
{
    Instruction &in = emit(Opcode::Cmp);
    in.dst = nullOperand();
    in.src0 = a;
    in.src1 = b;
    in.condMod = cond;
    in.condFlag = static_cast<std::uint8_t>(flag);
    return InstrRef(in);
}

InstrRef
KernelBuilder::sel(unsigned flag, const Operand &d, const Operand &a,
                   const Operand &b)
{
    Instruction &in = emit(Opcode::Sel);
    in.dst = d;
    in.src0 = a;
    in.src1 = b;
    in.condFlag = static_cast<std::uint8_t>(flag);
    return InstrRef(in);
}

InstrRef
KernelBuilder::inv(const Operand &d, const Operand &a)
{
    return emit3(Opcode::Inv, d, a, nullOperand(), nullOperand());
}

InstrRef
KernelBuilder::div(const Operand &d, const Operand &a, const Operand &b)
{
    return emit3(Opcode::Div, d, a, b, nullOperand());
}

InstrRef
KernelBuilder::sqrt(const Operand &d, const Operand &a)
{
    return emit3(Opcode::Sqrt, d, a, nullOperand(), nullOperand());
}

InstrRef
KernelBuilder::rsqrt(const Operand &d, const Operand &a)
{
    return emit3(Opcode::Rsqrt, d, a, nullOperand(), nullOperand());
}

InstrRef
KernelBuilder::sin(const Operand &d, const Operand &a)
{
    return emit3(Opcode::Sin, d, a, nullOperand(), nullOperand());
}

InstrRef
KernelBuilder::cos(const Operand &d, const Operand &a)
{
    return emit3(Opcode::Cos, d, a, nullOperand(), nullOperand());
}

InstrRef
KernelBuilder::exp2(const Operand &d, const Operand &a)
{
    return emit3(Opcode::Exp2, d, a, nullOperand(), nullOperand());
}

InstrRef
KernelBuilder::log2(const Operand &d, const Operand &a)
{
    return emit3(Opcode::Log2, d, a, nullOperand(), nullOperand());
}

InstrRef
KernelBuilder::pow(const Operand &d, const Operand &a, const Operand &b)
{
    return emit3(Opcode::Pow, d, a, b, nullOperand());
}

void
KernelBuilder::if_(unsigned flag, bool inverted)
{
    CfFrame frame;
    frame.kind = FrameKind::If;
    frame.ifIp = ip();
    cfStack_.push_back(frame);

    Instruction &in = emit(Opcode::If);
    in.predCtrl = inverted ? PredCtrl::Inverted : PredCtrl::Normal;
    in.predFlag = static_cast<std::uint8_t>(flag);
}

void
KernelBuilder::else_()
{
    fatal_if(cfStack_.empty() || cfStack_.back().kind != FrameKind::If,
             "kernel %s: else without if", name_.c_str());
    fatal_if(cfStack_.back().elseIp >= 0, "kernel %s: duplicate else",
             name_.c_str());
    cfStack_.back().elseIp = ip();
    emit(Opcode::Else);
}

void
KernelBuilder::endif_()
{
    fatal_if(cfStack_.empty() || cfStack_.back().kind != FrameKind::If,
             "kernel %s: endif without if", name_.c_str());
    const CfFrame frame = cfStack_.back();
    cfStack_.pop_back();

    const std::int32_t endif_ip = ip();
    emit(Opcode::EndIf);

    Instruction &if_in = instrs_[frame.ifIp];
    if_in.target0 = frame.elseIp >= 0 ? frame.elseIp : endif_ip;
    if_in.target1 = endif_ip;
    if (frame.elseIp >= 0)
        instrs_[frame.elseIp].target0 = endif_ip;
}

void
KernelBuilder::loop_()
{
    CfFrame frame;
    frame.kind = FrameKind::Loop;
    frame.beginIp = ip();
    cfStack_.push_back(frame);
    emit(Opcode::LoopBegin);
}

void
KernelBuilder::breakIf(unsigned flag, bool inverted)
{
    fatal_if(cfStack_.empty(), "kernel %s: break outside loop",
             name_.c_str());
    // Find the innermost loop (breaks may appear inside nested ifs).
    bool found = false;
    for (auto it = cfStack_.rbegin(); it != cfStack_.rend(); ++it) {
        if (it->kind == FrameKind::Loop) {
            it->breakIps.push_back(ip());
            found = true;
            break;
        }
    }
    fatal_if(!found, "kernel %s: break outside loop", name_.c_str());

    Instruction &in = emit(Opcode::Break);
    in.predCtrl = inverted ? PredCtrl::Inverted : PredCtrl::Normal;
    in.predFlag = static_cast<std::uint8_t>(flag);
}

void
KernelBuilder::contIf(unsigned flag, bool inverted)
{
    bool found = false;
    for (auto it = cfStack_.rbegin(); it != cfStack_.rend(); ++it) {
        if (it->kind == FrameKind::Loop) {
            it->breakIps.push_back(ip());
            found = true;
            break;
        }
    }
    fatal_if(!found, "kernel %s: cont outside loop", name_.c_str());

    Instruction &in = emit(Opcode::Cont);
    in.predCtrl = inverted ? PredCtrl::Inverted : PredCtrl::Normal;
    in.predFlag = static_cast<std::uint8_t>(flag);
}

void
KernelBuilder::endLoop(unsigned flag, bool inverted)
{
    fatal_if(cfStack_.empty() || cfStack_.back().kind != FrameKind::Loop,
             "kernel %s: endLoop without loop", name_.c_str());
    const CfFrame frame = cfStack_.back();
    cfStack_.pop_back();

    const std::int32_t end_ip = ip();
    Instruction &in = emit(Opcode::LoopEnd);
    in.predCtrl = inverted ? PredCtrl::Inverted : PredCtrl::Normal;
    in.predFlag = static_cast<std::uint8_t>(flag);
    in.target0 = frame.beginIp + 1; // skip re-executing LoopBegin

    for (const std::int32_t break_ip : frame.breakIps)
        instrs_[break_ip].target0 = end_ip;
}

InstrRef
KernelBuilder::gatherLoad(const Operand &dst, const Operand &addr,
                          DataType type)
{
    Instruction &in = emit(Opcode::Send);
    in.dst = dst;
    in.src0 = addr;
    in.send = {SendOp::GatherLoad, type, 1};
    return InstrRef(in);
}

InstrRef
KernelBuilder::scatterStore(const Operand &addr, const Operand &data,
                            DataType type)
{
    Instruction &in = emit(Opcode::Send);
    in.src0 = addr;
    in.src1 = data;
    in.send = {SendOp::ScatterStore, type, 1};
    return InstrRef(in);
}

InstrRef
KernelBuilder::blockLoad(unsigned dst_reg, const Operand &addr,
                         unsigned num_regs)
{
    Instruction &in = emit(Opcode::Send);
    in.dst = grfOperand(dst_reg, DataType::UD);
    in.src0 = addr;
    in.send = {SendOp::BlockLoad, DataType::UD,
               static_cast<std::uint8_t>(num_regs)};
    return InstrRef(in);
}

InstrRef
KernelBuilder::blockStore(const Operand &addr, unsigned src_reg,
                          unsigned num_regs)
{
    Instruction &in = emit(Opcode::Send);
    in.src0 = addr;
    in.src1 = grfOperand(src_reg, DataType::UD);
    in.send = {SendOp::BlockStore, DataType::UD,
               static_cast<std::uint8_t>(num_regs)};
    return InstrRef(in);
}

InstrRef
KernelBuilder::slmLoad(const Operand &dst, const Operand &addr,
                       DataType type)
{
    Instruction &in = emit(Opcode::Send);
    in.dst = dst;
    in.src0 = addr;
    in.send = {SendOp::SlmGatherLoad, type, 1};
    return InstrRef(in);
}

InstrRef
KernelBuilder::slmStore(const Operand &addr, const Operand &data,
                        DataType type)
{
    Instruction &in = emit(Opcode::Send);
    in.src0 = addr;
    in.src1 = data;
    in.send = {SendOp::SlmScatterStore, type, 1};
    return InstrRef(in);
}

InstrRef
KernelBuilder::slmAtomicAdd(const Operand &dst_old, const Operand &addr,
                            const Operand &addend)
{
    Instruction &in = emit(Opcode::Send);
    in.dst = dst_old;
    in.src0 = addr;
    in.src1 = addend;
    in.send = {SendOp::SlmAtomicAdd, DataType::D, 1};
    return InstrRef(in);
}

InstrRef
KernelBuilder::barrier()
{
    Instruction &in = emit(Opcode::Send);
    in.send = {SendOp::Barrier, DataType::UD, 0};
    return InstrRef(in);
}

InstrRef
KernelBuilder::fence()
{
    Instruction &in = emit(Opcode::Send);
    in.send = {SendOp::Fence, DataType::UD, 0};
    return InstrRef(in);
}

Kernel
KernelBuilder::build()
{
    fatal_if(!cfStack_.empty(), "kernel %s: unclosed control flow",
             name_.c_str());
    if (!argsFrozen_)
        firstTempReg_ = nextReg_;
    emit(Opcode::Halt);
    Kernel kernel(name_, simdWidth_, std::move(instrs_),
                  std::move(args_), firstTempReg_, nextReg_, slmBytes_);
    if (buildHook_ != nullptr)
        buildHook_(kernel);
    return kernel;
}

KernelBuilder::BuildHook KernelBuilder::buildHook_ = nullptr;

void
KernelBuilder::setBuildHook(BuildHook hook)
{
    buildHook_ = hook;
}

} // namespace iwc::isa
