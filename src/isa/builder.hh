/**
 * @file
 * Fluent kernel construction API. Workloads author kernels directly
 * against this builder (it plays the role of the OpenCL compiler's
 * back end in the paper's toolchain).
 *
 * Example:
 * @code
 *   KernelBuilder b("saxpy", 16);
 *   auto xs = b.argBuffer("x");
 *   auto ys = b.argBuffer("y");
 *   auto a = b.argF("a");
 *   auto addr = b.tmp(DataType::UD);
 *   auto x = b.tmp(DataType::F);
 *   b.mad(addr, b.globalId(), b.ud(4), xs);       // &x[gid]
 *   b.gatherLoad(x, addr, DataType::F);
 *   ...
 *   Kernel k = b.build();
 * @endcode
 */

#ifndef IWC_ISA_BUILDER_HH
#define IWC_ISA_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hh"
#include "isa/kernel.hh"

namespace iwc::isa
{

/**
 * Handle to an allocated virtual register: a per-channel vector of
 * @c type elements, starting at GRF register @c base. Implicitly
 * converts to a vector Operand.
 */
struct Reg
{
    std::uint8_t base = 0;
    DataType type = DataType::D;

    operator Operand() const { return grfOperand(base, type); }

    /** Scalar (broadcast) view of element @p elem. */
    Operand
    scalar(unsigned elem = 0) const
    {
        return grfScalar(base, type, elem);
    }

    /** Vector view reinterpreted with another element type. */
    Operand
    as(DataType t) const
    {
        return grfOperand(base, t);
    }
};

/**
 * Chainable reference to the most recently emitted instruction, used
 * to attach predication or override the SIMD width.
 */
class InstrRef
{
  public:
    explicit InstrRef(Instruction &in) : in_(in) {}

    /** Predicate the instruction on flag @p flag. */
    InstrRef &
    pred(unsigned flag, bool inverted = false)
    {
        in_.predCtrl = inverted ? PredCtrl::Inverted : PredCtrl::Normal;
        in_.predFlag = static_cast<std::uint8_t>(flag);
        return *this;
    }

    /** Override the instruction SIMD width (e.g. width-1 scalar ops). */
    InstrRef &
    width(unsigned w)
    {
        in_.simdWidth = static_cast<std::uint8_t>(w);
        return *this;
    }

  private:
    Instruction &in_;
};

/** Builds a Kernel instruction-by-instruction and patches branches. */
class KernelBuilder
{
  public:
    KernelBuilder(std::string name, unsigned simd_width);

    // --- Argument declaration (call before allocating temporaries) ---
    Operand argBuffer(const std::string &name);
    Operand argU(const std::string &name);
    Operand argI(const std::string &name);
    Operand argF(const std::string &name);

    // --- Dispatch payload accessors ---
    Operand globalId() const;   ///< per-channel global work-item id (UD)
    Operand localId() const;    ///< per-channel local work-item id (UD)
    Operand groupId() const;    ///< scalar flat workgroup id (UD)
    Operand subgroupIndex() const; ///< scalar subgroup index in group
    Operand localSize() const;  ///< scalar work items per group
    Operand globalSize() const; ///< scalar global work items
    Operand numGroups() const;  ///< scalar workgroup count

    // --- Immediates ---
    static Operand f(float v) { return immF(v); }
    static Operand df(double v) { return immDF(v); }
    static Operand d(std::int32_t v) { return immD(v); }
    static Operand ud(std::uint32_t v) { return immUD(v); }
    static Operand w(std::int16_t v) { return immW(v); }

    /** Allocates a fresh per-channel temporary vector register. */
    Reg tmp(DataType type);

    /** Allocates @p count consecutive raw GRF registers (block I/O). */
    unsigned allocRaw(unsigned count);

    /** Declares per-workgroup SLM usage (bytes). */
    void requireSlm(unsigned bytes) { slmBytes_ = bytes; }

    // --- ALU ---
    InstrRef mov(const Operand &dst, const Operand &src);
    InstrRef add(const Operand &d, const Operand &a, const Operand &b);
    InstrRef sub(const Operand &d, const Operand &a, const Operand &b);
    InstrRef mul(const Operand &d, const Operand &a, const Operand &b);
    InstrRef mad(const Operand &d, const Operand &a, const Operand &b,
                 const Operand &c);
    InstrRef min_(const Operand &d, const Operand &a, const Operand &b);
    InstrRef max_(const Operand &d, const Operand &a, const Operand &b);
    InstrRef and_(const Operand &d, const Operand &a, const Operand &b);
    InstrRef or_(const Operand &d, const Operand &a, const Operand &b);
    InstrRef xor_(const Operand &d, const Operand &a, const Operand &b);
    InstrRef not_(const Operand &d, const Operand &a);
    InstrRef shl(const Operand &d, const Operand &a, const Operand &b);
    InstrRef shr(const Operand &d, const Operand &a, const Operand &b);
    InstrRef asr(const Operand &d, const Operand &a, const Operand &b);
    InstrRef rndd(const Operand &d, const Operand &a);
    InstrRef frc(const Operand &d, const Operand &a);

    /** cmp.<cond> f#, a, b : sets flag bits for enabled channels. */
    InstrRef cmp(CondMod cond, unsigned flag, const Operand &a,
                 const Operand &b);

    /** sel f#, dst, a, b : dst = flag ? a : b per channel. */
    InstrRef sel(unsigned flag, const Operand &d, const Operand &a,
                 const Operand &b);

    // --- Extended math ---
    InstrRef inv(const Operand &d, const Operand &a);
    InstrRef div(const Operand &d, const Operand &a, const Operand &b);
    InstrRef sqrt(const Operand &d, const Operand &a);
    InstrRef rsqrt(const Operand &d, const Operand &a);
    InstrRef sin(const Operand &d, const Operand &a);
    InstrRef cos(const Operand &d, const Operand &a);
    InstrRef exp2(const Operand &d, const Operand &a);
    InstrRef log2(const Operand &d, const Operand &a);
    InstrRef pow(const Operand &d, const Operand &a, const Operand &b);

    // --- Structured control flow ---
    void if_(unsigned flag, bool inverted = false);
    void else_();
    void endif_();
    void loop_();
    void breakIf(unsigned flag, bool inverted = false);
    void contIf(unsigned flag, bool inverted = false);
    /** Loop back-edge: channels whose flag matches keep iterating. */
    void endLoop(unsigned flag, bool inverted = false);

    // --- Messages ---
    InstrRef gatherLoad(const Operand &dst, const Operand &addr,
                        DataType type);
    InstrRef scatterStore(const Operand &addr, const Operand &data,
                          DataType type);
    InstrRef blockLoad(unsigned dst_reg, const Operand &addr,
                       unsigned num_regs);
    InstrRef blockStore(const Operand &addr, unsigned src_reg,
                        unsigned num_regs);
    InstrRef slmLoad(const Operand &dst, const Operand &addr,
                     DataType type);
    InstrRef slmStore(const Operand &addr, const Operand &data,
                      DataType type);
    InstrRef slmAtomicAdd(const Operand &dst_old, const Operand &addr,
                          const Operand &addend);
    InstrRef barrier();
    InstrRef fence();

    /** Terminates the kernel and runs validation. */
    Kernel build();

    /**
     * Hook applied to every kernel build() produces, process-wide.
     * Used to opt into static verification at construction time (see
     * lint::installBuildVerifier); nullptr disables it.
     */
    using BuildHook = void (*)(const Kernel &);
    static void setBuildHook(BuildHook hook);

    unsigned simdWidth() const { return simdWidth_; }

  private:
    enum class FrameKind { If, Loop };

    struct CfFrame
    {
        FrameKind kind;
        std::int32_t ifIp = -1;    ///< ip of If
        std::int32_t elseIp = -1;  ///< ip of Else (if any)
        std::int32_t beginIp = -1; ///< ip of LoopBegin
        std::vector<std::int32_t> breakIps; ///< Break/Cont to patch
    };

    Instruction &emit(Opcode op);
    InstrRef emit3(Opcode op, const Operand &d, const Operand &a,
                   const Operand &b, const Operand &c);
    std::int32_t ip() const
    {
        return static_cast<std::int32_t>(instrs_.size());
    }

    static BuildHook buildHook_;

    std::string name_;
    unsigned simdWidth_;
    std::vector<Instruction> instrs_;
    std::vector<ArgInfo> args_;
    std::vector<CfFrame> cfStack_;
    unsigned nextReg_;      ///< bump allocator position
    unsigned firstTempReg_; ///< frozen once the first temp is allocated
    bool argsFrozen_ = false;
    unsigned slmBytes_ = 0;
};

} // namespace iwc::isa

#endif // IWC_ISA_BUILDER_HH
