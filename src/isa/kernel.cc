#include "isa/kernel.hh"

#include "common/bitutil.hh"
#include "common/hash.hh"
#include "common/logging.hh"

namespace iwc::isa
{

Kernel::Kernel(std::string name, unsigned simd_width,
               std::vector<Instruction> instructions,
               std::vector<ArgInfo> args, unsigned first_temp_reg,
               unsigned regs_used, unsigned slm_bytes)
    : name_(std::move(name)), simdWidth_(simd_width),
      instrs_(std::move(instructions)), args_(std::move(args)),
      firstTempReg_(first_temp_reg), regsUsed_(regs_used),
      slmBytes_(slm_bytes)
{
    validate();
}

namespace
{

void
validateOperand(const Kernel &k, const Instruction &in, const Operand &op,
                bool is_dst)
{
    if (op.isNull())
        return;
    if (op.isImm()) {
        fatal_if(is_dst, "kernel %s: immediate destination",
                 k.name().c_str());
        return;
    }
    const unsigned elems = op.scalar ? 1 : in.simdWidth;
    const unsigned end =
        op.grfByteOffset() + elems * dataTypeSize(op.type);
    fatal_if(end > kGrfRegCount * kGrfRegBytes,
             "kernel %s: operand r%u overruns the GRF", k.name().c_str(),
             op.reg);
}

} // namespace

void
Kernel::validate() const
{
    fatal_if(simdWidth_ != 1 && simdWidth_ != 4 && simdWidth_ != 8 &&
             simdWidth_ != 16 && simdWidth_ != 32,
             "kernel %s: illegal SIMD width %u", name_.c_str(), simdWidth_);
    fatal_if(instrs_.empty(), "kernel %s: empty instruction stream",
             name_.c_str());
    fatal_if(instrs_.back().op != Opcode::Halt,
             "kernel %s: does not end in halt", name_.c_str());

    const auto n = static_cast<std::int32_t>(instrs_.size());
    auto check_target = [&](std::int32_t t, const char *what) {
        fatal_if(t < 0 || t >= n, "kernel %s: %s target %d out of range",
                 name_.c_str(), what, t);
    };

    for (const Instruction &in : instrs_) {
        fatal_if(in.simdWidth > simdWidth_,
                 "kernel %s: instruction wider than kernel width",
                 name_.c_str());
        validateOperand(*this, in, in.dst, true);
        validateOperand(*this, in, in.src0, false);
        validateOperand(*this, in, in.src1, false);
        validateOperand(*this, in, in.src2, false);

        switch (in.op) {
          case Opcode::If:
            check_target(in.target0, "if");
            check_target(in.target1, "if/endif");
            break;
          case Opcode::Else:
          case Opcode::Break:
          case Opcode::Cont:
          case Opcode::LoopEnd:
            check_target(in.target0, opcodeName(in.op));
            break;
          case Opcode::Cmp:
            fatal_if(in.condMod == CondMod::None,
                     "kernel %s: cmp without condition modifier",
                     name_.c_str());
            break;
          default:
            break;
        }
    }
}

namespace
{

void
addOperand(Fnv64 &h, const Operand &op)
{
    h.addByte(static_cast<std::uint8_t>(op.file));
    h.addByte(op.reg);
    h.addByte(op.subReg);
    h.addByte(static_cast<std::uint8_t>(op.type));
    h.addByte(static_cast<std::uint8_t>(op.scalar));
    h.addByte(static_cast<std::uint8_t>(op.negate));
    h.addByte(static_cast<std::uint8_t>(op.absolute));
    h.add(op.imm);
}

} // namespace

std::uint64_t
Kernel::digest() const
{
    Fnv64 h;
    h.add(simdWidth_);
    h.add(firstTempReg_);
    h.add(regsUsed_);
    h.add(slmBytes_);
    h.add(args_.size());
    for (const ArgInfo &a : args_) {
        h.addByte(static_cast<std::uint8_t>(a.kind));
        h.addByte(a.reg);
    }
    h.add(instrs_.size());
    for (const Instruction &in : instrs_) {
        h.addByte(static_cast<std::uint8_t>(in.op));
        h.addByte(in.simdWidth);
        addOperand(h, in.dst);
        addOperand(h, in.src0);
        addOperand(h, in.src1);
        addOperand(h, in.src2);
        h.addByte(static_cast<std::uint8_t>(in.predCtrl));
        h.addByte(in.predFlag);
        h.addByte(static_cast<std::uint8_t>(in.condMod));
        h.addByte(in.condFlag);
        h.add(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(in.target0)));
        h.add(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(in.target1)));
        h.addByte(static_cast<std::uint8_t>(in.send.op));
        h.addByte(static_cast<std::uint8_t>(in.send.type));
        h.addByte(in.send.numRegs);
    }
    return h.value();
}

} // namespace iwc::isa
