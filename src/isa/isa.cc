#include "isa/isa.hh"

#include <bit>

#include "common/logging.hh"

namespace iwc::isa
{

const char *
dataTypeName(DataType t)
{
    switch (t) {
      case DataType::UW: return "uw";
      case DataType::W:  return "w";
      case DataType::UD: return "ud";
      case DataType::D:  return "d";
      case DataType::F:  return "f";
      case DataType::DF: return "df";
      case DataType::UQ: return "uq";
      case DataType::Q:  return "q";
    }
    return "?";
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Mov:       return "mov";
      case Opcode::Add:       return "add";
      case Opcode::Sub:       return "sub";
      case Opcode::Mul:       return "mul";
      case Opcode::Mad:       return "mad";
      case Opcode::Min:       return "min";
      case Opcode::Max:       return "max";
      case Opcode::Avg:       return "avg";
      case Opcode::And:       return "and";
      case Opcode::Or:        return "or";
      case Opcode::Xor:       return "xor";
      case Opcode::Not:       return "not";
      case Opcode::Shl:       return "shl";
      case Opcode::Shr:       return "shr";
      case Opcode::Asr:       return "asr";
      case Opcode::Cmp:       return "cmp";
      case Opcode::Sel:       return "sel";
      case Opcode::Rndd:      return "rndd";
      case Opcode::Frc:       return "frc";
      case Opcode::Inv:       return "math.inv";
      case Opcode::Div:       return "math.div";
      case Opcode::Sqrt:      return "math.sqrt";
      case Opcode::Rsqrt:     return "math.rsqrt";
      case Opcode::Sin:       return "math.sin";
      case Opcode::Cos:       return "math.cos";
      case Opcode::Exp2:      return "math.exp2";
      case Opcode::Log2:      return "math.log2";
      case Opcode::Pow:       return "math.pow";
      case Opcode::If:        return "if";
      case Opcode::Else:      return "else";
      case Opcode::EndIf:     return "endif";
      case Opcode::LoopBegin: return "loop";
      case Opcode::LoopEnd:   return "while";
      case Opcode::Break:     return "break";
      case Opcode::Cont:      return "cont";
      case Opcode::Halt:      return "halt";
      case Opcode::Send:      return "send";
      case Opcode::NumOpcodes: break;
    }
    return "?";
}

const char *
condModName(CondMod c)
{
    switch (c) {
      case CondMod::None: return "";
      case CondMod::Eq:   return "eq";
      case CondMod::Ne:   return "ne";
      case CondMod::Lt:   return "lt";
      case CondMod::Le:   return "le";
      case CondMod::Gt:   return "gt";
      case CondMod::Ge:   return "ge";
    }
    return "?";
}

const char *
sendOpName(SendOp op)
{
    switch (op) {
      case SendOp::GatherLoad:      return "gather";
      case SendOp::ScatterStore:    return "scatter";
      case SendOp::BlockLoad:       return "block_ld";
      case SendOp::BlockStore:      return "block_st";
      case SendOp::SlmGatherLoad:   return "slm_gather";
      case SendOp::SlmScatterStore: return "slm_scatter";
      case SendOp::SlmAtomicAdd:    return "slm_atomic_add";
      case SendOp::Barrier:         return "barrier";
      case SendOp::Fence:           return "fence";
    }
    return "?";
}

Operand
grfOperand(unsigned reg, DataType type, unsigned sub_reg)
{
    panic_if(reg >= kGrfRegCount, "GRF register %u out of range", reg);
    Operand o;
    o.file = RegFile::Grf;
    o.reg = static_cast<std::uint8_t>(reg);
    o.subReg = static_cast<std::uint8_t>(sub_reg);
    o.type = type;
    return o;
}

Operand
grfScalar(unsigned reg, DataType type, unsigned sub_reg)
{
    Operand o = grfOperand(reg, type, sub_reg);
    o.scalar = true;
    return o;
}

Operand
immF(float v)
{
    Operand o;
    o.file = RegFile::Imm;
    o.type = DataType::F;
    o.imm = std::bit_cast<std::uint32_t>(v);
    return o;
}

Operand
immDF(double v)
{
    Operand o;
    o.file = RegFile::Imm;
    o.type = DataType::DF;
    o.imm = std::bit_cast<std::uint64_t>(v);
    return o;
}

Operand
immD(std::int32_t v)
{
    Operand o;
    o.file = RegFile::Imm;
    o.type = DataType::D;
    o.imm = static_cast<std::uint32_t>(v);
    return o;
}

Operand
immUD(std::uint32_t v)
{
    Operand o;
    o.file = RegFile::Imm;
    o.type = DataType::UD;
    o.imm = v;
    return o;
}

Operand
immW(std::int16_t v)
{
    Operand o;
    o.file = RegFile::Imm;
    o.type = DataType::W;
    o.imm = static_cast<std::uint16_t>(v);
    return o;
}

Operand
nullOperand()
{
    return Operand{};
}

unsigned
execElemBytes(const Instruction &in)
{
    unsigned bytes = 0;
    for (const Operand *op : {&in.dst, &in.src0, &in.src1, &in.src2})
        if (!op->isNull())
            bytes = std::max(bytes, dataTypeSize(op->type));
    return bytes == 0 ? 4 : bytes;
}

} // namespace iwc::isa
