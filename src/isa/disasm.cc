#include "isa/disasm.hh"

#include <bit>
#include <cstdio>
#include <sstream>

namespace iwc::isa
{

std::string
operandToString(const Operand &op)
{
    char buf[64];
    switch (op.file) {
      case RegFile::Null:
        return "null";
      case RegFile::Imm:
        if (op.type == DataType::F) {
            std::snprintf(buf, sizeof(buf), "%g:f",
                          std::bit_cast<float>(
                              static_cast<std::uint32_t>(op.imm)));
        } else if (op.type == DataType::DF) {
            std::snprintf(buf, sizeof(buf), "%g:df",
                          std::bit_cast<double>(op.imm));
        } else if (isSignedType(op.type)) {
            std::snprintf(buf, sizeof(buf), "%lld:%s",
                          static_cast<long long>(
                              static_cast<std::int64_t>(op.imm)),
                          dataTypeName(op.type));
        } else {
            std::snprintf(buf, sizeof(buf), "%llu:%s",
                          static_cast<unsigned long long>(op.imm),
                          dataTypeName(op.type));
        }
        return buf;
      case RegFile::Grf: {
        std::string s;
        if (op.negate)
            s += '-';
        if (op.absolute)
            s += "(abs)";
        std::snprintf(buf, sizeof(buf), "r%u.%u%s:%s", op.reg, op.subReg,
                      op.scalar ? "<0>" : "", dataTypeName(op.type));
        return s + buf;
      }
    }
    return "?";
}

std::string
instrToString(const Instruction &in)
{
    std::ostringstream os;
    if (in.predCtrl != PredCtrl::None) {
        os << '(' << (in.predCtrl == PredCtrl::Inverted ? "-" : "+") << 'f'
           << static_cast<int>(in.predFlag) << ") ";
    }
    os << opcodeName(in.op);
    if (in.op == Opcode::Cmp)
        os << '.' << condModName(in.condMod) << ".f"
           << static_cast<int>(in.condFlag);
    if (in.op == Opcode::Sel)
        os << ".f" << static_cast<int>(in.condFlag);
    if (in.op == Opcode::Send)
        os << '.' << sendOpName(in.send.op);
    os << '(' << static_cast<int>(in.simdWidth) << ')';

    const bool has_dst = !in.dst.isNull() || in.op == Opcode::Cmp;
    if (has_dst)
        os << ' ' << operandToString(in.dst);
    for (const Operand *src : {&in.src0, &in.src1, &in.src2}) {
        if (!src->isNull())
            os << (has_dst || src != &in.src0 ? "," : "") << ' '
               << operandToString(*src);
    }
    if (in.op == Opcode::Send && in.send.numRegs > 1)
        os << " {" << static_cast<int>(in.send.numRegs) << " regs}";
    if (in.target0 >= 0)
        os << " ->" << in.target0;
    if (in.target1 >= 0)
        os << '/' << in.target1;
    return os.str();
}

std::string
kernelToString(const Kernel &k)
{
    std::ostringstream os;
    os << "kernel " << k.name() << " simd" << k.simdWidth() << " ("
       << k.size() << " instructions, " << k.regsUsed() << " regs";
    if (k.slmBytes())
        os << ", " << k.slmBytes() << "B slm";
    os << ")\n";
    for (std::uint32_t ip = 0; ip < k.size(); ++ip) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%4u: ", ip);
        os << buf << instrToString(k.instr(ip)) << '\n';
    }
    return os.str();
}

} // namespace iwc::isa
