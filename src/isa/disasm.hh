/**
 * @file
 * Textual disassembly of instructions and kernels, for debugging and
 * for the examples that print generated code.
 */

#ifndef IWC_ISA_DISASM_HH
#define IWC_ISA_DISASM_HH

#include <string>

#include "isa/isa.hh"
#include "isa/kernel.hh"

namespace iwc::isa
{

/** Renders one operand, e.g. "r12.0:f" or "3.5:f" or "null". */
std::string operandToString(const Operand &op);

/** Renders one instruction in Gen-assembly-like syntax. */
std::string instrToString(const Instruction &in);

/** Renders a whole kernel with instruction indices. */
std::string kernelToString(const Kernel &k);

} // namespace iwc::isa

#endif // IWC_ISA_DISASM_HH
