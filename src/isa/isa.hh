/**
 * @file
 * Definition of the Gen-like variable-width SIMD ISA executed by the
 * simulated EUs.
 *
 * The ISA follows the conventions of Intel's Gen EU ISA as described in
 * the paper (Section 2.2): instructions carry an explicit SIMD width of
 * 1/4/8/16/32 channels, operands live in a general register file of 128
 * 256-bit registers, individual channels can be predicated by flag
 * registers, and structured control flow (IF/ELSE/ENDIF and loops with
 * BREAK/CONT) manipulates a per-thread channel-mask stack. Memory and
 * synchronization operations go through SEND messages on a separate pipe.
 */

#ifndef IWC_ISA_ISA_HH
#define IWC_ISA_ISA_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace iwc::isa
{

/** Operand element datatypes. Names follow Gen assembly conventions. */
enum class DataType : std::uint8_t
{
    UW, ///< unsigned 16-bit word
    W,  ///< signed 16-bit word
    UD, ///< unsigned 32-bit doubleword
    D,  ///< signed 32-bit doubleword
    F,  ///< 32-bit IEEE float
    DF, ///< 64-bit IEEE double
    UQ, ///< unsigned 64-bit quadword
    Q,  ///< signed 64-bit quadword
};

/** Size in bytes of one element of the given datatype. */
constexpr unsigned
dataTypeSize(DataType t)
{
    switch (t) {
      case DataType::UW:
      case DataType::W:
        return 2;
      case DataType::UD:
      case DataType::D:
      case DataType::F:
        return 4;
      case DataType::DF:
      case DataType::UQ:
      case DataType::Q:
        return 8;
    }
    return 4;
}

/** True for F and DF. */
constexpr bool
isFloatType(DataType t)
{
    return t == DataType::F || t == DataType::DF;
}

/** True for signed integer types. */
constexpr bool
isSignedType(DataType t)
{
    return t == DataType::W || t == DataType::D || t == DataType::Q;
}

const char *dataTypeName(DataType t);

/** Opcodes. Grouped by the execution pipe that consumes them. */
enum class Opcode : std::uint8_t
{
    // --- FPU pipe (simple int/float ALU ops, incl. FMA) ---
    Mov,  ///< copy with optional type conversion
    Add,
    Sub,
    Mul,
    Mad,  ///< dst = src0 * src1 + src2 (fused)
    Min,
    Max,
    Avg,
    And,
    Or,
    Xor,
    Not,
    Shl,
    Shr,  ///< logical shift right
    Asr,  ///< arithmetic shift right
    Cmp,  ///< compare, writes a flag register
    Sel,  ///< per-channel select between src0/src1 driven by a flag
    Rndd, ///< round down (floor)
    Frc,  ///< fractional part

    // --- EM pipe (extended math) ---
    Inv,  ///< reciprocal
    Div,
    Sqrt,
    Rsqrt,
    Sin,
    Cos,
    Exp2,
    Log2,
    Pow,

    // --- Control flow (handled by the front end) ---
    If,
    Else,
    EndIf,
    LoopBegin,
    LoopEnd,
    Break,
    Cont,
    Halt, ///< end of thread (EOT)

    // --- Message pipe ---
    Send,

    NumOpcodes,
};

const char *opcodeName(Opcode op);

/** True if the opcode executes on the extended-math pipe. */
constexpr bool
isExtendedMath(Opcode op)
{
    return op >= Opcode::Inv && op <= Opcode::Pow;
}

/** True for structured-control-flow opcodes. */
constexpr bool
isControlFlow(Opcode op)
{
    return op >= Opcode::If && op <= Opcode::Halt;
}

/** Comparison condition for Cmp. */
enum class CondMod : std::uint8_t
{
    None,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
};

const char *condModName(CondMod c);

/** Per-instruction predication control. */
enum class PredCtrl : std::uint8_t
{
    None,     ///< no predication
    Normal,   ///< enabled channels = flag bits set
    Inverted, ///< enabled channels = flag bits clear
};

/** Register file an operand refers to. */
enum class RegFile : std::uint8_t
{
    Grf,  ///< general register file
    Imm,  ///< immediate (sources only)
    Null, ///< null register (dst of cmp-for-flags-only, etc.)
};

/**
 * One instruction operand. GRF operands address a contiguous element
 * region starting at register @c reg, element offset @c subReg;
 * scalar operands read element 0 and broadcast it to all channels
 * (region stride 0).
 */
struct Operand
{
    RegFile file = RegFile::Null;
    std::uint8_t reg = 0;     ///< GRF register number (0..127)
    std::uint8_t subReg = 0;  ///< element offset within the register
    DataType type = DataType::D;
    bool scalar = false;      ///< broadcast element 0 to all channels
    bool negate = false;      ///< source modifier: arithmetic negate
    bool absolute = false;    ///< source modifier: absolute value
    std::uint64_t imm = 0;    ///< raw immediate bits

    /** Byte offset of channel 0 of this operand within the GRF. */
    unsigned
    grfByteOffset() const
    {
        return reg * kGrfRegBytes + subReg * dataTypeSize(type);
    }

    bool isNull() const { return file == RegFile::Null; }
    bool isImm() const { return file == RegFile::Imm; }
    bool isGrf() const { return file == RegFile::Grf; }
};

/** Factory helpers for operands. */
Operand grfOperand(unsigned reg, DataType type, unsigned sub_reg = 0);
Operand grfScalar(unsigned reg, DataType type, unsigned sub_reg = 0);
Operand immF(float v);
Operand immDF(double v);
Operand immD(std::int32_t v);
Operand immUD(std::uint32_t v);
Operand immW(std::int16_t v);
Operand nullOperand();

/** Kinds of SEND messages. */
enum class SendOp : std::uint8_t
{
    GatherLoad,      ///< per-channel global addresses -> per-channel data
    ScatterStore,    ///< per-channel global addresses <- per-channel data
    BlockLoad,       ///< scalar global address -> consecutive registers
    BlockStore,      ///< scalar global address <- consecutive registers
    SlmGatherLoad,   ///< per-channel SLM offsets -> per-channel data
    SlmScatterStore, ///< per-channel SLM offsets <- per-channel data
    SlmAtomicAdd,    ///< per-channel atomic int add, returns old value
    Barrier,         ///< workgroup barrier
    Fence,           ///< memory fence
};

const char *sendOpName(SendOp op);

/** True if the message accesses shared local memory. */
constexpr bool
isSlmSend(SendOp op)
{
    return op == SendOp::SlmGatherLoad || op == SendOp::SlmScatterStore ||
        op == SendOp::SlmAtomicAdd;
}

/** True if the message reads memory into the GRF. */
constexpr bool
isLoadSend(SendOp op)
{
    return op == SendOp::GatherLoad || op == SendOp::BlockLoad ||
        op == SendOp::SlmGatherLoad || op == SendOp::SlmAtomicAdd;
}

/**
 * Descriptor payload of a Send instruction. The message reuses the
 * regular instruction operands: dst receives load data, src0 holds the
 * per-channel (or scalar, for block messages) byte addresses, and src1
 * holds store data or the atomic addend.
 */
struct SendDesc
{
    SendOp op = SendOp::Fence;
    DataType type = DataType::UD; ///< element type moved per channel
    std::uint8_t numRegs = 1;     ///< register count for block messages
};

/**
 * A decoded instruction. This is the in-memory representation produced
 * by the KernelBuilder; there is no binary encoding because the paper's
 * mechanisms operate strictly post-decode.
 */
struct Instruction
{
    Opcode op = Opcode::Mov;
    std::uint8_t simdWidth = 16; ///< 1, 4, 8, 16, or 32

    Operand dst;
    Operand src0;
    Operand src1;
    Operand src2;

    PredCtrl predCtrl = PredCtrl::None;
    std::uint8_t predFlag = 0; ///< flag register for predication / If / Sel

    CondMod condMod = CondMod::None;
    std::uint8_t condFlag = 0; ///< flag register written by Cmp

    /**
     * Branch targets (instruction indices), patched by the builder:
     *  If:        target0 = Else or EndIf, target1 = EndIf
     *  Else:      target0 = EndIf
     *  Break/Cont:target0 = LoopEnd
     *  LoopEnd:   target0 = first instruction of the loop body
     */
    std::int32_t target0 = -1;
    std::int32_t target1 = -1;

    SendDesc send;

    /** The lane mask covering this instruction's full SIMD width. */
    LaneMask widthMask() const { return laneMaskForWidth(simdWidth); }
};

/**
 * Element size that governs how many cycles the instruction needs on
 * the 16B/cycle datapath: the widest element among its operands
 * (Section 4.1: "the actual number of execution cycles ... would
 * depend on datatypes").
 */
unsigned execElemBytes(const Instruction &in);

} // namespace iwc::isa

#endif // IWC_ISA_ISA_HH
