#include "eu/eu_core.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "compaction/scc_algorithm.hh"
#include "mem/coalescer.hh"

namespace iwc::eu
{

using compaction::ExecShape;
using compaction::Mode;
using isa::Instruction;
using isa::Opcode;
using isa::SendOp;

void
EuStats::merge(const EuStats &other)
{
    instructions += other.instructions;
    aluInstructions += other.aluInstructions;
    sendInstructions += other.sendInstructions;
    ctrlInstructions += other.ctrlInstructions;
    sumActiveLanes += other.sumActiveLanes;
    sumSimdWidth += other.sumSimdWidth;
    for (unsigned m = 0; m < compaction::kNumModes; ++m)
        euCyclesByMode[m] += other.euCyclesByMode[m];
    for (unsigned b = 0; b < compaction::kNumUtilBins; ++b)
        utilBins[b] += other.utilBins[b];
    memMessages += other.memMessages;
    memLines += other.memLines;
    slmMessages += other.slmMessages;
    sccSwizzledLanes += other.sccSwizzledLanes;
    issueSlotsUsed += other.issueSlotsUsed;
    threadsRetired += other.threadsRetired;
}

EuCore::EuCore(unsigned id, const EuConfig &config, mem::MemSystem &mem,
               GpuHooks &hooks)
    : id_(id), config_(config), mem_(mem), hooks_(hooks),
      slots_(config.numThreads), arbiter_(config.numThreads)
{
    fatal_if(config.numThreads == 0, "EU needs at least one thread");
    fatal_if(config.issueWidth == 0 || config.arbitrationPeriod == 0,
             "EU issue bandwidth must be nonzero");
}

void
EuCore::bindKernel(const isa::Kernel &kernel, func::GlobalMemory &gmem)
{
    kernel_ = &kernel;
    interp_ = std::make_unique<func::Interpreter>(kernel, gmem);
}

int
EuCore::findFreeSlot() const
{
    for (unsigned i = 0; i < slots_.size(); ++i) {
        if (slots_[i].status == SlotStatus::Idle ||
            slots_[i].status == SlotStatus::Done) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

unsigned
EuCore::numFreeSlots() const
{
    unsigned free_slots = 0;
    for (const ThreadSlot &slot : slots_)
        if (slot.status == SlotStatus::Idle ||
            slot.status == SlotStatus::Done)
            ++free_slots;
    return free_slots;
}

void
writeDispatchPayload(func::ThreadState &t, const isa::Kernel &kernel,
                     const DispatchInfo &info)
{
    t.reset(info.dispatchMask);

    // r0 header (see kernel.hh for the layout).
    const std::uint32_t flat_subgroup =
        static_cast<std::uint32_t>(info.wgId) * info.subgroupsPerGroup +
        info.subgroupIndex;
    const std::uint32_t header[8] = {
        static_cast<std::uint32_t>(info.wgId),
        info.subgroupIndex,
        info.localSize,
        info.globalSize,
        info.numGroups,
        info.subgroupsPerGroup,
        info.slm ? info.slm->size() : 0,
        flat_subgroup,
    };
    t.writeGrfBytes(0, header, sizeof(header));

    // Per-channel global and local work-item ids.
    const unsigned width = kernel.simdWidth();
    for (unsigned ch = 0; ch < width; ++ch) {
        const auto gid =
            static_cast<std::uint32_t>(info.globalIdBase + ch);
        const auto lid = static_cast<std::uint32_t>(info.localIdBase + ch);
        t.writeGrf(kernel.globalIdReg() * kGrfRegBytes + ch * 4, gid);
        t.writeGrf(kernel.localIdReg() * kGrfRegBytes + ch * 4, lid);
    }

    // Kernel arguments, one register each.
    const auto &args = kernel.args();
    panic_if(info.argWords == nullptr ||
             info.argWords->size() != args.size(),
             "kernel %s: argument count mismatch", kernel.name().c_str());
    for (size_t i = 0; i < args.size(); ++i)
        t.writeGrf(args[i].reg * kGrfRegBytes, (*info.argWords)[i]);
}

void
EuCore::writePayload(ThreadSlot &slot, const DispatchInfo &info)
{
    writeDispatchPayload(slot.state, *kernel_, info);
}

void
EuCore::dispatch(const DispatchInfo &info)
{
    panic_if(kernel_ == nullptr, "dispatch before bindKernel");
    const int idx = findFreeSlot();
    panic_if(idx < 0, "dispatch to a full EU");
    ThreadSlot &slot = slots_[static_cast<unsigned>(idx)];

    slot.status = SlotStatus::Active;
    slot.sb.reset();
    slot.slm = info.slm;
    slot.wgId = info.wgId;
    slot.resumeAt = info.readyAt;
    slot.lastMemDone = 0;
    writePayload(slot, info);
}

void
EuCore::releaseBarrier(int wg_id, Cycle now)
{
    for (ThreadSlot &slot : slots_) {
        if (slot.status == SlotStatus::WaitBarrier &&
            slot.wgId == wg_id) {
            slot.status = SlotStatus::Active;
            slot.resumeAt = now + 1;
        }
    }
}

bool
EuCore::idle() const
{
    for (const ThreadSlot &slot : slots_)
        if (slot.status == SlotStatus::Active ||
            slot.status == SlotStatus::WaitBarrier)
            return false;
    return true;
}

bool
EuCore::canIssue(const ThreadSlot &slot, Cycle now) const
{
    if (slot.status != SlotStatus::Active || slot.resumeAt > now)
        return false;
    const Instruction &in = kernel_->instr(slot.state.ip());
    if (!slot.sb.ready(in, now))
        return false;
    switch (pipeFor(in)) {
      case PipeKind::Fpu:
        return fpu_.canAccept(now);
      case PipeKind::Em:
        return em_.canAccept(now);
      case PipeKind::Send:
        return send_.canAccept(now);
      case PipeKind::Ctrl:
        return true;
    }
    return false;
}

void
EuCore::issueAlu(ThreadSlot &slot, const Instruction &in, LaneMask exec,
                 PipeKind pk, Cycle now)
{
    const ExecShape shape{
        in.simdWidth,
        static_cast<std::uint8_t>(isa::execElemBytes(in)),
        exec,
    };

    // Account what this instruction would cost under every mode; the
    // configured mode drives actual pipe occupancy.
    for (unsigned m = 0; m < compaction::kNumModes; ++m) {
        stats_.euCyclesByMode[m] +=
            compaction::planCycleCount(static_cast<Mode>(m), shape);
    }

    const unsigned cycles = compaction::planCycleCount(config_.mode, shape);
    if (config_.mode == Mode::Scc)
        stats_.sccSwizzledLanes +=
            compaction::planScc(shape).swizzledLanes();

    ExecPipe &pipe = pk == PipeKind::Em ? em_ : fpu_;
    pipe.occupy(now, cycles);

    const Cycle latency =
        pk == PipeKind::Em ? config_.emLatency : config_.fpuLatency;
    const Cycle writeback = now + std::max(cycles, 1u) + latency;
    slot.sb.claimDst(in, writeback);

    ++stats_.aluInstructions;
    const auto bin = compaction::classifyUtil(in.simdWidth, exec);
    ++stats_.utilBins[static_cast<unsigned>(bin)];
}

void
EuCore::issueSend(ThreadSlot &slot, const func::StepResult &result,
                  Cycle now)
{
    const Instruction &in = *result.instr;
    send_.occupy(now, 1);
    ++stats_.sendInstructions;
    for (unsigned m = 0; m < compaction::kNumModes; ++m)
        stats_.euCyclesByMode[m] += config_.sendCycles;

    if (result.isBarrier) {
        slot.status = SlotStatus::WaitBarrier;
        hooks_.onBarrierArrive(slot.wgId);
        return;
    }

    if (in.send.op == SendOp::Fence) {
        // Fence: stall the thread until its outstanding accesses land.
        slot.resumeAt = std::max(slot.resumeAt, slot.lastMemDone);
        return;
    }

    if (!result.hasMem)
        return;

    const Cycle entry = now + config_.sendIssueLatency;
    Cycle done;
    if (isa::isSlmSend(in.send.op)) {
        done = mem_.accessSlm(result.mem, entry);
        ++stats_.slmMessages;
    } else {
        const auto lines = mem::coalesceLines(result.mem);
        const bool is_write = in.send.op == SendOp::ScatterStore ||
            in.send.op == SendOp::BlockStore;
        const mem::MemResult res =
            mem_.accessGlobal(lines, is_write, entry);
        done = res.completion;
        stats_.memLines += res.lines;
    }
    ++stats_.memMessages;
    slot.lastMemDone = std::max(slot.lastMemDone, done);

    if (isa::isLoadSend(in.send.op))
        slot.sb.claimDst(in, done + config_.writebackLatency);
}

void
EuCore::issue(ThreadSlot &slot, Cycle now)
{
    interp_->setSlm(slot.slm);
    const func::StepResult result = interp_->step(slot.state);
    const Instruction &in = *result.instr;

    ++stats_.instructions;
    ++stats_.issueSlotsUsed;
    stats_.sumActiveLanes += popCount(result.execMask);
    stats_.sumSimdWidth += in.simdWidth;

    switch (pipeFor(in)) {
      case PipeKind::Fpu:
        issueAlu(slot, in, result.execMask, PipeKind::Fpu, now);
        break;
      case PipeKind::Em:
        issueAlu(slot, in, result.execMask, PipeKind::Em, now);
        break;
      case PipeKind::Send:
        issueSend(slot, result, now);
        break;
      case PipeKind::Ctrl:
        ++stats_.ctrlInstructions;
        for (unsigned m = 0; m < compaction::kNumModes; ++m)
            stats_.euCyclesByMode[m] += config_.ctrlCycles;
        if (result.isHalt) {
            slot.status = SlotStatus::Done;
            ++stats_.threadsRetired;
            hooks_.onThreadDone(slot.wgId);
        }
        break;
    }
}

void
EuCore::tick(Cycle now)
{
    if (now % config_.arbitrationPeriod != 0)
        return;

    const auto picks = arbiter_.pick(config_.issueWidth, [&](unsigned i) {
        return canIssue(slots_[i], now);
    });
    for (const unsigned i : picks)
        issue(slots_[i], now);
}

} // namespace iwc::eu
