#include "eu/eu_core.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "mem/coalescer.hh"
#include "obs/sink.hh"

namespace iwc::eu
{

using compaction::ExecShape;
using compaction::Mode;
using isa::Instruction;
using isa::Opcode;
using isa::SendOp;

void
EuStats::merge(const EuStats &other)
{
    instructions += other.instructions;
    aluInstructions += other.aluInstructions;
    sendInstructions += other.sendInstructions;
    ctrlInstructions += other.ctrlInstructions;
    sumActiveLanes += other.sumActiveLanes;
    sumSimdWidth += other.sumSimdWidth;
    for (unsigned m = 0; m < compaction::kNumModes; ++m)
        euCyclesByMode[m] += other.euCyclesByMode[m];
    for (unsigned b = 0; b < compaction::kNumUtilBins; ++b)
        utilBins[b] += other.utilBins[b];
    memMessages += other.memMessages;
    memLines += other.memLines;
    slmMessages += other.slmMessages;
    sccSwizzledLanes += other.sccSwizzledLanes;
    issueSlotsUsed += other.issueSlotsUsed;
    threadsRetired += other.threadsRetired;
}

EuCore::EuCore(unsigned id, const EuConfig &config, mem::MemSystem &mem,
               GpuHooks &hooks)
    : id_(id), config_(config), mem_(mem), hooks_(hooks),
      slots_(config.numThreads), arbiter_(config.numThreads),
      pickBuf_(config.numThreads), freeSlots_(config.numThreads)
{
    fatal_if(config.numThreads == 0, "EU needs at least one thread");
    fatal_if(config.issueWidth == 0 || config.arbitrationPeriod == 0,
             "EU issue bandwidth must be nonzero");
}

void
EuCore::bindKernel(const isa::Kernel &kernel, func::GlobalMemory &gmem)
{
    kernel_ = &kernel;
    interp_ =
        std::make_unique<func::Interpreter>(kernel, gmem, config_.backend);
    decoded_ = &interp_->decoded();
    depPool_ = decoded_->depPool();
}

int
EuCore::findFreeSlot() const
{
    for (unsigned i = 0; i < slots_.size(); ++i) {
        if (slots_[i].status == SlotStatus::Idle ||
            slots_[i].status == SlotStatus::Done) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

unsigned
EuCore::numFreeSlots() const
{
    return freeSlots_;
}

void
writeDispatchPayload(func::ThreadState &t, const isa::Kernel &kernel,
                     const DispatchInfo &info)
{
    t.reset(info.dispatchMask);

    // r0 header (see kernel.hh for the layout).
    const std::uint32_t flat_subgroup =
        static_cast<std::uint32_t>(info.wgId) * info.subgroupsPerGroup +
        info.subgroupIndex;
    const std::uint32_t header[8] = {
        static_cast<std::uint32_t>(info.wgId),
        info.subgroupIndex,
        info.localSize,
        info.globalSize,
        info.numGroups,
        info.subgroupsPerGroup,
        info.slm ? info.slm->size() : 0,
        flat_subgroup,
    };
    t.writeGrfBytes(0, header, sizeof(header));

    // Per-channel global and local work-item ids.
    const unsigned width = kernel.simdWidth();
    for (unsigned ch = 0; ch < width; ++ch) {
        const auto gid =
            static_cast<std::uint32_t>(info.globalIdBase + ch);
        const auto lid = static_cast<std::uint32_t>(info.localIdBase + ch);
        t.writeGrf(kernel.globalIdReg() * kGrfRegBytes + ch * 4, gid);
        t.writeGrf(kernel.localIdReg() * kGrfRegBytes + ch * 4, lid);
    }

    // Kernel arguments, one register each.
    const auto &args = kernel.args();
    panic_if(info.argWords == nullptr ||
             info.argWords->size() != args.size(),
             "kernel %s: argument count mismatch", kernel.name().c_str());
    for (size_t i = 0; i < args.size(); ++i)
        t.writeGrf(args[i].reg * kGrfRegBytes, (*info.argWords)[i]);
}

void
EuCore::writePayload(ThreadSlot &slot, const DispatchInfo &info)
{
    writeDispatchPayload(slot.state, *kernel_, info);
}

void
EuCore::dispatch(const DispatchInfo &info)
{
    panic_if(kernel_ == nullptr, "dispatch before bindKernel");
    const int idx = findFreeSlot();
    panic_if(idx < 0, "dispatch to a full EU");
    ThreadSlot &slot = slots_[static_cast<unsigned>(idx)];

    slot.status = SlotStatus::Active;
    slot.sb.reset();
    slot.slm = info.slm;
    slot.wgId = info.wgId;
    slot.resumeAt = info.readyAt;
    slot.lastMemDone = 0;
    slot.streamId =
        static_cast<std::uint32_t>(info.wgId) * info.subgroupsPerGroup +
        info.subgroupIndex;
    slot.replayPos = 0;
    if (replay_ != nullptr) {
        const std::vector<IssueRecord> &stream =
            replay_->streams[slot.streamId];
        slot.replayRecs = stream.data();
        slot.replayCount = static_cast<std::uint32_t>(stream.size());
        // Replay never touches the functional state beyond the ip, so
        // the GRF payload writes are skipped; the reset puts ip at 0,
        // where the slot's stream begins.
        slot.state.reset(info.dispatchMask);
    } else {
        writePayload(slot, info);
    }
    updateSlotReady(slot);
    --freeSlots_;
    nextIssueAt_ = 0; // rescan on the next tick

    if (sink_ != nullptr) [[unlikely]] {
        // The slot holds work from here but cannot issue before
        // readyAt (dispatch latency), so the trace treats readyAt as
        // the start of the slot's live interval.
        slot.waitBase = info.readyAt;
        obs::Event ev;
        ev.cycle = info.readyAt;
        ev.kind = obs::EventKind::Dispatch;
        ev.eu = static_cast<std::uint8_t>(id_);
        ev.slot = slotIndex(slot);
        ev.thread = {info.wgId, info.subgroupIndex};
        sink_->emit(ev);
    }
}

void
EuCore::releaseBarrier(int wg_id, Cycle now)
{
    for (ThreadSlot &slot : slots_) {
        if (slot.status == SlotStatus::WaitBarrier &&
            slot.wgId == wg_id) {
            slot.status = SlotStatus::Active;
            slot.resumeAt = now + 1;
            updateSlotReady(slot);
            nextIssueAt_ = 0; // rescan on the next tick
            if (sink_ != nullptr) [[unlikely]] {
                slot.waitBase = now + 1;
                obs::Event ev;
                ev.cycle = now;
                ev.kind = obs::EventKind::BarrierRelease;
                ev.eu = static_cast<std::uint8_t>(id_);
                ev.slot = slotIndex(slot);
                ev.thread = {wg_id, 0};
                sink_->emit(ev);
            }
        }
    }
}

bool
EuCore::idle() const
{
    for (const ThreadSlot &slot : slots_)
        if (slot.status == SlotStatus::Active ||
            slot.status == SlotStatus::WaitBarrier)
            return false;
    return true;
}

bool
EuCore::canIssue(const ThreadSlot &slot, Cycle now) const
{
    if (slot.status != SlotStatus::Active || slot.readyAt > now)
        return false;
    switch (slot.pipe) {
      case PipeKind::Fpu:
        return fpu_.canAccept(now);
      case PipeKind::Em:
        return em_.canAccept(now);
      case PipeKind::Send:
        return send_.canAccept(now);
      case PipeKind::Ctrl:
        return true;
    }
    return false;
}

/** pipeFor over the decoded form (no Instruction deref). */
static PipeKind
pipeKindOf(const func::DecodedInstr &d)
{
    using func::ExecClass;
    switch (d.cls) {
      case ExecClass::AluFloat:
      case ExecClass::AluInt:
      case ExecClass::CmpFloat:
      case ExecClass::CmpInt:
        return isa::isExtendedMath(d.op) ? PipeKind::Em : PipeKind::Fpu;
      case ExecClass::Send:
        return PipeKind::Send;
      default:
        return PipeKind::Ctrl;
    }
}

void
EuCore::updateSlotReady(ThreadSlot &slot)
{
    if (slot.status != SlotStatus::Active)
        return;
    const func::DecodedInstr &d = decoded_->at(slot.state.ip());
    slot.cur = &d;
    slot.readyAt = std::max(
        slot.resumeAt,
        slot.sb.readyCycle(depPool_ + d.depOff, d.depCount,
                           d.flagDepMask));
    slot.pipe = pipeKindOf(d);
}

Cycle
EuCore::nextIssueCycle(Cycle from) const
{
    const Cycle period = config_.arbitrationPeriod;
    const Cycle fpu_free = fpu_.nextFree();
    const Cycle em_free = em_.nextFree();
    const Cycle send_free = send_.nextFree();
    // No slot's bound can beat @p from rounded up to an arbitration
    // boundary, so the scan stops as soon as some slot reaches it —
    // in steady state the first active slot is often already ready,
    // turning the full-array scan into a one-slot peek.
    const Cycle floor = period > 1
        ? (from + period - 1) / period * period
        : from;
    // Indexed by PipeKind (Fpu, Em, Send, Ctrl) so the per-slot pipe
    // floor is a load instead of a branchy switch.
    const Cycle pipe_free[4] = {fpu_free, em_free, send_free, 0};
    Cycle best = kNeverIssues;
    for (const ThreadSlot &slot : slots_) {
        if (slot.status != SlotStatus::Active)
            continue;
        Cycle at = std::max(from, slot.readyAt);
        at = std::max(at, pipe_free[static_cast<unsigned>(slot.pipe)]);
        // tick() only arbitrates on period boundaries; the division is
        // hot enough to dodge for the default period of 1.
        if (period > 1)
            at = (at + period - 1) / period * period;
        best = std::min(best, at);
        if (best == floor)
            break;
    }
    return best;
}

void
EuCore::emitIssue(const ThreadSlot &slot, const func::DecodedInstr &d,
                  std::uint32_t ip, LaneMask exec, PipeKind pk,
                  unsigned occ, const compaction::PlanCosts *costs,
                  Cycle now)
{
    const auto saturate16 = [](Cycle v) {
        return static_cast<std::uint16_t>(std::min<Cycle>(v, 0xffff));
    };

    obs::Event ev;
    ev.cycle = now;
    ev.ip = ip;
    ev.kind = obs::EventKind::InstrIssue;
    ev.eu = static_cast<std::uint8_t>(id_);
    ev.slot = slotIndex(slot);

    obs::IssuePayload &p = ev.issue;
    p.execMask = exec;
    if (costs != nullptr) {
        for (unsigned m = 0; m < compaction::kNumModes; ++m)
            p.modeCycles[m] = costs->cycles[m];
    } else {
        // Fixed-cost kinds (send/control) cost the same under every
        // mode, mirroring the EuStats accounting.
        for (unsigned m = 0; m < compaction::kNumModes; ++m)
            p.modeCycles[m] = static_cast<std::uint16_t>(occ);
    }
    p.occCycles = static_cast<std::uint16_t>(occ);
    p.pipe = static_cast<std::uint8_t>(pk);
    p.simdWidth = d.simdWidth;

    // Stall attribution: the slot sat from waitBase to now. The
    // scoreboard's share is how far past waitBase the slowest operand
    // dependence pushed readiness; the rest is resume waits (dispatch
    // latency, fences) and pipe/arbitration contention. The slot's
    // scoreboard is untouched between updateSlotReady() and here (its
    // own claims land below), so this recomputation sees exactly the
    // state that gated issue.
    const Cycle base = slot.waitBase;
    const Cycle wait = now > base ? now - base : 0;
    Cycle sb_ready = 0;
    std::int16_t block = obs::kBlockNone;
    const std::uint8_t *regs = depPool_ + d.depOff;
    for (unsigned i = 0; i < d.depCount; ++i) {
        const Cycle at = slot.sb.regReadyAt(regs[i]);
        if (at > sb_ready) {
            sb_ready = at;
            block = regs[i];
        }
    }
    for (unsigned f = 0; f < 2; ++f) {
        if ((d.flagDepMask & (1u << f)) != 0) {
            const Cycle at = slot.sb.flagReadyAt(f);
            if (at > sb_ready) {
                sb_ready = at;
                block = obs::kBlockFlag;
            }
        }
    }
    Cycle wait_sb = sb_ready > base ? sb_ready - base : 0;
    wait_sb = std::min(wait_sb, wait);
    p.waitTotal = saturate16(wait);
    p.waitSb = saturate16(wait_sb);
    p.blockReg = wait_sb > 0 ? block : obs::kBlockNone;

    sink_->emit(ev);
}

void
EuCore::issueAlu(ThreadSlot &slot, const func::DecodedInstr &d,
                 std::uint32_t ip, LaneMask exec, PipeKind pk, Cycle now)
{
    // Account what this instruction would cost under every mode; the
    // configured mode drives actual pipe occupancy. Loop bodies replay
    // the same masks, so the plan costs come from the memoization
    // cache, fronted by the slot's own last-shape memo (same packing
    // as the cache's internal key).
    const LaneMask masked = exec & laneMaskForWidth(d.simdWidth);
    const std::uint64_t plan_key =
        (std::uint64_t{d.simdWidth} << 40) |
        (std::uint64_t{d.execBytes} << 32) | masked;
    if (plan_key != slot.planKey) {
        const ExecShape shape{d.simdWidth, d.execBytes, exec};
        slot.planCosts = &planCache_.costs(shape);
        slot.planKey = plan_key;
    } else {
        planCache_.noteMemoHit();
    }
    const compaction::PlanCosts &costs = *slot.planCosts;
    for (unsigned m = 0; m < compaction::kNumModes; ++m)
        stats_.euCyclesByMode[m] += costs.cycles[m];

    const unsigned cycles =
        costs.cycles[static_cast<unsigned>(config_.mode)];
    if (config_.mode == Mode::Scc)
        stats_.sccSwizzledLanes += costs.sccSwizzledLanes;

    if (sink_ != nullptr) [[unlikely]]
        emitIssue(slot, d, ip, exec, pk, cycles, &costs, now);

    ExecPipe &pipe = pk == PipeKind::Em ? em_ : fpu_;
    pipe.occupy(now, cycles);

    const Cycle latency =
        pk == PipeKind::Em ? config_.emLatency : config_.fpuLatency;
    const Cycle writeback = now + std::max(cycles, 1u) + latency;
    slot.sb.claimDst(depPool_ + d.claimOff, d.claimCount, d.claimFlag,
                     writeback);

    ++stats_.aluInstructions;
    const auto bin = compaction::classifyUtil(d.simdWidth, exec);
    ++stats_.utilBins[static_cast<unsigned>(bin)];
}

bool
EuCore::issueSendHead(ThreadSlot &slot, const func::DecodedInstr &d,
                      std::uint32_t ip, LaneMask exec, bool is_barrier,
                      bool has_mem, Cycle now)
{
    send_.occupy(now, 1);
    ++stats_.sendInstructions;
    for (unsigned m = 0; m < compaction::kNumModes; ++m)
        stats_.euCyclesByMode[m] += config_.sendCycles;

    if (sink_ != nullptr) [[unlikely]]
        emitIssue(slot, d, ip, exec, PipeKind::Send, config_.sendCycles,
                  nullptr, now);

    if (is_barrier) {
        slot.status = SlotStatus::WaitBarrier;
        if (sink_ != nullptr) [[unlikely]] {
            obs::Event ev;
            ev.cycle = now;
            ev.ip = ip;
            ev.kind = obs::EventKind::BarrierArrive;
            ev.eu = static_cast<std::uint8_t>(id_);
            ev.slot = slotIndex(slot);
            ev.thread = {slot.wgId, 0};
            sink_->emit(ev);
        }
        hooks_.onBarrierArrive(slot.wgId);
        return false;
    }

    if (d.sendOp == SendOp::Fence) {
        // Fence: stall the thread until its outstanding accesses land.
        slot.resumeAt = std::max(slot.resumeAt, slot.lastMemDone);
        return false;
    }

    return has_mem;
}

void
EuCore::finishSend(ThreadSlot &slot, const func::DecodedInstr &d,
                   std::uint32_t ip, Cycle now, Cycle done,
                   unsigned lines, bool is_write, bool is_slm)
{
    ++stats_.memMessages;
    slot.lastMemDone = std::max(slot.lastMemDone, done);

    if (sink_ != nullptr) [[unlikely]] {
        obs::Event ev;
        ev.cycle = now;
        ev.ip = ip;
        ev.kind = obs::EventKind::MemAccess;
        ev.eu = static_cast<std::uint8_t>(id_);
        ev.slot = slotIndex(slot);
        ev.mem = {lines, static_cast<std::uint32_t>(done - now),
                  static_cast<std::uint8_t>(is_write),
                  static_cast<std::uint8_t>(is_slm)};
        sink_->emit(ev);
    }

    if (isa::isLoadSend(d.sendOp))
        slot.sb.claimDst(depPool_ + d.claimOff, d.claimCount,
                         d.claimFlag, done + config_.writebackLatency);
}

void
EuCore::issueSend(ThreadSlot &slot, const func::DecodedInstr &d,
                  const func::StepResult &result, Cycle now)
{
    if (!issueSendHead(slot, d, result.ip, result.execMask,
                       result.isBarrier, result.hasMem, now))
        return;

    const Cycle entry = now + config_.sendIssueLatency;
    Cycle done;
    unsigned lines = 1;
    bool is_write = false;
    const bool is_slm = isa::isSlmSend(d.sendOp);
    if (is_slm) {
        const unsigned degree = mem_.slmConflictDegreeOf(result.mem);
        done = mem_.accessSlmDegree(degree, entry);
        ++stats_.slmMessages;
        if (captureRec_ != nullptr)
            captureRec_->slmDegree = static_cast<std::uint16_t>(degree);
    } else {
        mem::coalesceLinesInto(result.mem, lineBuf_);
        is_write = d.sendOp == SendOp::ScatterStore ||
            d.sendOp == SendOp::BlockStore;
        if (captureRec_ != nullptr) {
            captureRec_->lineOff =
                static_cast<std::uint32_t>(capture_->lines.size());
            captureRec_->lineCount =
                static_cast<std::uint16_t>(lineBuf_.size());
            capture_->lines.insert(capture_->lines.end(),
                                   lineBuf_.begin(), lineBuf_.end());
        }
        const mem::MemResult res =
            mem_.accessGlobal(lineBuf_, is_write, entry);
        done = res.completion;
        lines = res.lines;
        stats_.memLines += res.lines;
    }
    finishSend(slot, d, result.ip, now, done, lines, is_write, is_slm);
}

void
EuCore::issueSendReplay(ThreadSlot &slot, const func::DecodedInstr &d,
                        const IssueRecord &rec, Cycle now)
{
    if (!issueSendHead(slot, d, rec.ip, rec.execMask,
                       (rec.flags & IssueRecord::kBarrier) != 0,
                       (rec.flags & IssueRecord::kHasMem) != 0, now))
        return;

    const Cycle entry = now + config_.sendIssueLatency;
    Cycle done;
    unsigned lines = 1;
    bool is_write = false;
    const bool is_slm = isa::isSlmSend(d.sendOp);
    if (is_slm) {
        done = mem_.accessSlmDegree(rec.slmDegree, entry);
        ++stats_.slmMessages;
    } else {
        const auto first = replay_->lines.begin() + rec.lineOff;
        lineBuf_.assign(first, first + rec.lineCount);
        is_write = d.sendOp == SendOp::ScatterStore ||
            d.sendOp == SendOp::BlockStore;
        const mem::MemResult res =
            mem_.accessGlobal(lineBuf_, is_write, entry);
        done = res.completion;
        lines = res.lines;
        stats_.memLines += res.lines;
    }
    finishSend(slot, d, rec.ip, now, done, lines, is_write, is_slm);
}

void
EuCore::issueCtrl(ThreadSlot &slot, const func::DecodedInstr &d,
                  std::uint32_t ip, LaneMask exec, bool is_halt,
                  Cycle now)
{
    ++stats_.ctrlInstructions;
    for (unsigned m = 0; m < compaction::kNumModes; ++m)
        stats_.euCyclesByMode[m] += config_.ctrlCycles;
    if (sink_ != nullptr) [[unlikely]]
        emitIssue(slot, d, ip, exec, PipeKind::Ctrl, config_.ctrlCycles,
                  nullptr, now);
    if (is_halt) {
        slot.status = SlotStatus::Done;
        ++freeSlots_;
        ++stats_.threadsRetired;
        if (sink_ != nullptr) [[unlikely]] {
            obs::Event ev;
            ev.cycle = now;
            ev.ip = ip;
            ev.kind = obs::EventKind::ThreadRetire;
            ev.eu = static_cast<std::uint8_t>(id_);
            ev.slot = slotIndex(slot);
            ev.thread = {slot.wgId, 0};
            sink_->emit(ev);
        }
        hooks_.onThreadDone(slot.wgId);
    }
}

void
EuCore::issueReplay(ThreadSlot &slot, Cycle now)
{
    panic_if(slot.replayPos >= slot.replayCount,
             "issue trace exhausted (stream %u)", slot.streamId);
    const IssueRecord &rec = slot.replayRecs[slot.replayPos++];
    // The slot's pre-decoded current instruction is the one the
    // record describes; the check catches traces from another kernel.
    panic_if(rec.ip != slot.state.ip(),
             "issue trace diverged (stream %u: record ip %u, slot ip "
             "%u)", slot.streamId, rec.ip, slot.state.ip());
    const func::DecodedInstr &d = *slot.cur;

    // The only functional state replay maintains: the ip, which
    // updateSlotReady() needs to pre-decode the *next* instruction.
    slot.state.setIp(rec.nextIp);

    ++stats_.instructions;
    ++stats_.issueSlotsUsed;
    stats_.sumActiveLanes += popCount(rec.execMask);
    stats_.sumSimdWidth += d.simdWidth;

    switch (slot.pipe) {
      case PipeKind::Fpu:
        issueAlu(slot, d, rec.ip, rec.execMask, PipeKind::Fpu, now);
        break;
      case PipeKind::Em:
        issueAlu(slot, d, rec.ip, rec.execMask, PipeKind::Em, now);
        break;
      case PipeKind::Send:
        issueSendReplay(slot, d, rec, now);
        break;
      case PipeKind::Ctrl:
        issueCtrl(slot, d, rec.ip, rec.execMask,
                  (rec.flags & IssueRecord::kHalt) != 0, now);
        break;
    }

    updateSlotReady(slot);
    if (sink_ != nullptr) [[unlikely]]
        slot.waitBase = now + 1;
}

void
EuCore::issue(ThreadSlot &slot, Cycle now)
{
    if (replay_ != nullptr) {
        issueReplay(slot, now);
        return;
    }

    interp_->setSlm(slot.slm);
    interp_->step(slot.state, stepBuf_);
    const func::StepResult &result = stepBuf_;
    // result.ip is the pre-step ip, exactly what updateSlotReady()
    // last decoded into slot.cur.
    const func::DecodedInstr &d = *slot.cur;

    ++stats_.instructions;
    ++stats_.issueSlotsUsed;
    stats_.sumActiveLanes += popCount(result.execMask);
    stats_.sumSimdWidth += d.simdWidth;

    if (capture_ != nullptr) [[unlikely]] {
        std::vector<IssueRecord> &stream =
            capture_->streams[slot.streamId];
        IssueRecord rec;
        rec.ip = result.ip;
        rec.nextIp = slot.state.ip(); // post-step: control resolved
        rec.execMask = result.execMask;
        rec.flags = static_cast<std::uint8_t>(
            (result.hasMem ? IssueRecord::kHasMem : 0) |
            (result.isBarrier ? IssueRecord::kBarrier : 0) |
            (result.isHalt ? IssueRecord::kHalt : 0));
        stream.push_back(rec);
        captureRec_ = &stream.back();
    }

    // slot.pipe was computed from the same ip the step just executed.
    switch (slot.pipe) {
      case PipeKind::Fpu:
        issueAlu(slot, d, result.ip, result.execMask, PipeKind::Fpu,
                 now);
        break;
      case PipeKind::Em:
        issueAlu(slot, d, result.ip, result.execMask, PipeKind::Em,
                 now);
        break;
      case PipeKind::Send:
        issueSend(slot, d, result, now);
        break;
      case PipeKind::Ctrl:
        issueCtrl(slot, d, result.ip, result.execMask, result.isHalt,
                  now);
        break;
    }
    captureRec_ = nullptr;

    // Slot state (ip, scoreboard, resumeAt) settled; refresh the cached
    // readiness the arbiter and the simulator's idle skip consult.
    updateSlotReady(slot);
    if (sink_ != nullptr) [[unlikely]]
        slot.waitBase = now + 1;
}

Cycle
EuCore::tick(Cycle now)
{
    if (config_.arbitrationPeriod > 1 &&
        now % config_.arbitrationPeriod != 0)
        return nextIssueAt_;
    // nextIssueAt_ lower-bounds the next issueable cycle given no
    // external event; dispatch() and releaseBarrier() reset it, so a
    // pick before then would come back empty — skip the slot scan.
    if (now < nextIssueAt_)
        return nextIssueAt_;

    const unsigned n = arbiter_.pickInto(
        config_.issueWidth,
        [&](unsigned i) { return canIssue(slots_[i], now); },
        pickBuf_.data());
    for (unsigned k = 0; k < n; ++k)
        issue(slots_[pickBuf_[k]], now);
    nextIssueAt_ = nextIssueCycle(now + 1);
    return nextIssueAt_;
}

} // namespace iwc::eu
