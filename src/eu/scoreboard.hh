/**
 * @file
 * Per-thread dependence scoreboard (pipeline stage 3 of Section 2.2):
 * tracks the cycle at which each GRF register and flag register
 * becomes available, gating in-order issue on RAW/WAW hazards.
 */

#ifndef IWC_EU_SCOREBOARD_HH
#define IWC_EU_SCOREBOARD_HH

#include <array>

#include "common/types.hh"
#include "isa/isa.hh"

namespace iwc::eu
{

/** See file comment. */
class Scoreboard
{
  public:
    Scoreboard() { reset(); }

    void
    reset()
    {
        regReadyAt_.fill(0);
        flagReadyAt_.fill(0);
    }

    /** Earliest cycle at which the instruction's operands are ready. */
    Cycle readyCycle(const isa::Instruction &in) const;

    /** True if the instruction can issue at @p now. */
    bool
    ready(const isa::Instruction &in, Cycle now) const
    {
        return readyCycle(in) <= now;
    }

    /** Marks the instruction's destinations busy until @p ready_at. */
    void claimDst(const isa::Instruction &in, Cycle ready_at);

  private:
    template <typename Fn>
    static void forEachReg(const isa::Operand &op, unsigned simd_width,
                           Fn &&fn);
    template <typename Fn>
    static void forEachSrcReg(const isa::Instruction &in, Fn &&fn);
    template <typename Fn>
    static void forEachDstReg(const isa::Instruction &in, Fn &&fn);

    std::array<Cycle, kGrfRegCount> regReadyAt_;
    std::array<Cycle, 2> flagReadyAt_;
};

} // namespace iwc::eu

#endif // IWC_EU_SCOREBOARD_HH
