/**
 * @file
 * Per-thread dependence scoreboard (pipeline stage 3 of Section 2.2):
 * tracks the cycle at which each GRF register and flag register
 * becomes available, gating in-order issue on RAW/WAW hazards.
 */

#ifndef IWC_EU_SCOREBOARD_HH
#define IWC_EU_SCOREBOARD_HH

#include <algorithm>
#include <array>

#include "common/types.hh"
#include "isa/isa.hh"

namespace iwc::eu
{

/** See file comment. */
class Scoreboard
{
  public:
    Scoreboard() { reset(); }

    void
    reset()
    {
        regReadyAt_.fill(0);
        flagReadyAt_.fill(0);
    }

    /** Earliest cycle at which the instruction's operands are ready. */
    Cycle readyCycle(const isa::Instruction &in) const;

    /** True if the instruction can issue at @p now. */
    bool
    ready(const isa::Instruction &in, Cycle now) const
    {
        return readyCycle(in) <= now;
    }

    /** Marks the instruction's destinations busy until @p ready_at. */
    void claimDst(const isa::Instruction &in, Cycle ready_at);

    /**
     * readyCycle over a predecoded register list (indices validated at
     * decode time) plus a 2-bit flag dependence mask — same result as
     * the instruction-walking form, without re-deriving operand spans.
     */
    Cycle
    readyCycle(const std::uint8_t *regs, unsigned count,
               unsigned flag_mask) const
    {
        Cycle ready = 0;
        for (unsigned i = 0; i < count; ++i)
            ready = std::max(ready, regReadyAt_[regs[i]]);
        if (flag_mask & 1u)
            ready = std::max(ready, flagReadyAt_[0]);
        if (flag_mask & 2u)
            ready = std::max(ready, flagReadyAt_[1]);
        return ready;
    }

    /**
     * Ready cycle of one GRF register / flag register — the raw state
     * behind readyCycle(), exposed so the observability layer can
     * attribute a stall to the specific register that gated issue
     * longest (see obs/event.hh IssuePayload::blockReg).
     */
    Cycle regReadyAt(unsigned reg) const { return regReadyAt_[reg]; }
    Cycle flagReadyAt(unsigned flag) const { return flagReadyAt_[flag]; }

    /** claimDst over a predecoded register list (claim_flag < 0: none). */
    void
    claimDst(const std::uint8_t *regs, unsigned count, int claim_flag,
             Cycle ready_at)
    {
        for (unsigned i = 0; i < count; ++i) {
            Cycle &at = regReadyAt_[regs[i]];
            at = std::max(at, ready_at);
        }
        if (claim_flag >= 0) {
            Cycle &at = flagReadyAt_[claim_flag & 1];
            at = std::max(at, ready_at);
        }
    }

  private:
    template <typename Fn>
    static void forEachReg(const isa::Operand &op, unsigned simd_width,
                           Fn &&fn);
    template <typename Fn>
    static void forEachSrcReg(const isa::Instruction &in, Fn &&fn);
    template <typename Fn>
    static void forEachDstReg(const isa::Instruction &in, Fn &&fn);

    std::array<Cycle, kGrfRegCount> regReadyAt_;
    std::array<Cycle, 2> flagReadyAt_;
};

} // namespace iwc::eu

#endif // IWC_EU_SCOREBOARD_HH
