#include "eu/scoreboard.hh"

#include <algorithm>

#include "common/logging.hh"

namespace iwc::eu
{

using isa::Instruction;
using isa::Opcode;
using isa::Operand;

template <typename Fn>
void
Scoreboard::forEachReg(const Operand &op, unsigned simd_width, Fn &&fn)
{
    if (!op.isGrf())
        return;
    const unsigned elems = op.scalar ? 1 : simd_width;
    const unsigned first = op.grfByteOffset();
    const unsigned last = first + elems * isa::dataTypeSize(op.type) - 1;
    for (unsigned r = first / kGrfRegBytes; r <= last / kGrfRegBytes; ++r)
        fn(r);
}

template <typename Fn>
void
Scoreboard::forEachSrcReg(const Instruction &in, Fn &&fn)
{
    forEachReg(in.src0, in.simdWidth, fn);
    forEachReg(in.src1, in.simdWidth, fn);
    forEachReg(in.src2, in.simdWidth, fn);
    // Block stores read numRegs consecutive registers from src1.
    if (in.op == Opcode::Send &&
        in.send.op == isa::SendOp::BlockStore) {
        for (unsigned r = 0; r < in.send.numRegs; ++r)
            fn(in.src1.reg + r);
    }
}

template <typename Fn>
void
Scoreboard::forEachDstReg(const Instruction &in, Fn &&fn)
{
    if (in.op == Opcode::Send && in.send.op == isa::SendOp::BlockLoad) {
        for (unsigned r = 0; r < in.send.numRegs; ++r)
            fn(in.dst.reg + r);
        return;
    }
    forEachReg(in.dst, in.simdWidth, fn);
}

Cycle
Scoreboard::readyCycle(const Instruction &in) const
{
    Cycle ready = 0;
    auto consider = [&](unsigned r) {
        panic_if(r >= kGrfRegCount, "scoreboard register out of range");
        ready = std::max(ready, regReadyAt_[r]);
    };
    forEachSrcReg(in, consider);
    // In-order issue: the destination must also be free (WAW).
    forEachDstReg(in, consider);

    if (in.predCtrl != isa::PredCtrl::None)
        ready = std::max(ready, flagReadyAt_[in.predFlag & 1]);
    if (in.op == Opcode::Sel)
        ready = std::max(ready, flagReadyAt_[in.condFlag & 1]);
    return ready;
}

void
Scoreboard::claimDst(const Instruction &in, Cycle ready_at)
{
    auto claim = [&](unsigned r) {
        panic_if(r >= kGrfRegCount, "scoreboard register out of range");
        regReadyAt_[r] = std::max(regReadyAt_[r], ready_at);
    };
    forEachDstReg(in, claim);
    if (in.op == Opcode::Cmp) {
        flagReadyAt_[in.condFlag & 1] =
            std::max(flagReadyAt_[in.condFlag & 1], ready_at);
    }
}

} // namespace iwc::eu
