// RotatingArbiter is header-only; this TU anchors it into the library.
#include "eu/arbiter.hh"
