/**
 * @file
 * Per-subgroup issue traces: the functional facts a timing launch
 * consumes, recorded once and replayed under other compaction modes.
 *
 * The key invariant (the whole basis of single-build multi-mode
 * compare runs): for a data-race-free kernel, the per-subgroup
 * sequence of (ip, execution mask, coalesced memory lines, SLM
 * conflict degree) is independent of the compaction mode. Compaction
 * only re-times issue — it never changes which instructions a
 * subgroup executes or what data they touch; barriers order the only
 * cross-subgroup communication. Timing, by contrast, is fully mode-
 * dependent (dispatch placement, arbitration, pipe occupancy, cache
 * interleaving), so a replay re-simulates all of it from scratch and
 * only skips functional execution — the dominant cost — reading each
 * slot's next step from its stream instead of stepping the
 * interpreter. Replayed LaunchStats are bit-identical to a full
 * simulation of the same mode (gated over the whole workload corpus
 * by tests/test_compare_run.cc).
 *
 * Streams are keyed by flat subgroup id (wgId * subgroupsPerGroup +
 * subgroupIndex), which is stable across modes even though dispatch
 * *placement* (which EU, which cycle) is not.
 */

#ifndef IWC_EU_ISSUE_TRACE_HH
#define IWC_EU_ISSUE_TRACE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace iwc::eu
{

/** One issued instruction of one subgroup (see file comment). */
struct IssueRecord
{
    std::uint32_t ip = 0;     ///< instruction issued
    std::uint32_t nextIp = 0; ///< ip after the step (control resolved)
    LaneMask execMask = 0;
    std::uint32_t lineOff = 0;  ///< global sends: offset into lines
    std::uint16_t lineCount = 0;///< global sends: coalesced line count
    std::uint16_t slmDegree = 0;///< SLM sends: bank conflict degree
    std::uint8_t flags = 0;     ///< kHasMem | kBarrier | kHalt

    static constexpr std::uint8_t kHasMem = 1;
    static constexpr std::uint8_t kBarrier = 2;
    static constexpr std::uint8_t kHalt = 4;
};

/** Everything one launch records; reusable by any number of replays. */
struct IssueTrace
{
    /** Indexed by flat subgroup id; each stream is in issue order. */
    std::vector<std::vector<IssueRecord>> streams;
    /** Coalesced line-address pool the records slice into. */
    std::vector<Addr> lines;

    void
    clear()
    {
        streams.clear();
        lines.clear();
    }
};

} // namespace iwc::eu

#endif // IWC_EU_ISSUE_TRACE_HH
