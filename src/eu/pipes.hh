/**
 * @file
 * The EU's execution pipes: the 4-lane FPU, the 4-lane extended-math
 * (EM) unit, and the message (SEND) pipe. A pipe accepts one micro-op
 * per cycle, so a multi-cycle SIMD instruction occupies it for its
 * (possibly compressed) cycle count — this is exactly where BCC/SCC
 * recover throughput.
 */

#ifndef IWC_EU_PIPES_HH
#define IWC_EU_PIPES_HH

#include <algorithm>

#include "common/types.hh"
#include "isa/isa.hh"

namespace iwc::eu
{

/** Which pipe an instruction issues to. */
enum class PipeKind : std::uint8_t
{
    Fpu,  ///< int/float ALU including FMA
    Em,   ///< extended math (div, sqrt, transcendental)
    Send, ///< memory / barrier / fence messages
    Ctrl, ///< structured control flow (front-end handled)
};

/** Pipe selection for an instruction. */
constexpr PipeKind
pipeFor(const isa::Instruction &in)
{
    if (in.op == isa::Opcode::Send)
        return PipeKind::Send;
    if (isa::isControlFlow(in.op))
        return PipeKind::Ctrl;
    if (isa::isExtendedMath(in.op))
        return PipeKind::Em;
    return PipeKind::Fpu;
}

/** Occupancy tracker for one pipe. */
class ExecPipe
{
  public:
    bool canAccept(Cycle now) const { return nextFree_ <= now; }

    /** Occupies the pipe for @p cycles issue slots starting at now. */
    void
    occupy(Cycle now, unsigned cycles)
    {
        nextFree_ = std::max(nextFree_, now + cycles);
        busyCycles_ += cycles;
        ++instructions_;
    }

    Cycle nextFree() const { return nextFree_; }
    std::uint64_t busyCycles() const { return busyCycles_; }
    std::uint64_t instructions() const { return instructions_; }

  private:
    Cycle nextFree_ = 0;
    std::uint64_t busyCycles_ = 0;
    std::uint64_t instructions_ = 0;
};

} // namespace iwc::eu

#endif // IWC_EU_PIPES_HH
