/**
 * @file
 * Cycle-level model of one execution unit (EU): a multi-threaded SIMD
 * core with the seven-stage pipeline of Section 2.2. Instructions are
 * functionally executed at issue time (after the scoreboard clears),
 * which yields the final execution mask exactly where the paper's
 * BCC/SCC control logic consumes it — between decode and operand
 * fetch.
 */

#ifndef IWC_EU_EU_CORE_HH
#define IWC_EU_EU_CORE_HH

#include <array>
#include <memory>
#include <vector>

#include "compaction/cycle_plan.hh"
#include "compaction/plan_cache.hh"
#include "eu/arbiter.hh"
#include "eu/issue_trace.hh"
#include "eu/pipes.hh"
#include "eu/scoreboard.hh"
#include "func/interp.hh"
#include "mem/mem_system.hh"

namespace iwc::obs
{
class EventSink;
}

namespace iwc::eu
{

/** EU machine parameters. */
struct EuConfig
{
    unsigned numThreads = 6;
    compaction::Mode mode = compaction::Mode::IvbOpt;

    /** Functional execution backend used at issue time. */
    func::BackendKind backend = func::BackendKind::Auto;

    /**
     * Issue bandwidth: up to issueWidth instructions from distinct
     * threads every arbitrationPeriod cycles. The default (1 per
     * cycle) equals the paper's "two instructions every two cycles"
     * in sustained rate.
     */
    unsigned issueWidth = 1;
    unsigned arbitrationPeriod = 1;

    Cycle fpuLatency = 6;       ///< result latency beyond occupancy
    Cycle emLatency = 16;
    Cycle sendIssueLatency = 2; ///< EU-to-data-cluster message latency
    Cycle writebackLatency = 2; ///< return-data-to-GRF latency
    unsigned ctrlCycles = 1;    ///< fixed cost of a control instruction
    unsigned sendCycles = 2;    ///< fixed EU-side cost of a send
};

/** Aggregated per-EU counters; merge() combines EUs for GPU totals. */
struct EuStats
{
    std::uint64_t instructions = 0;
    std::uint64_t aluInstructions = 0;
    std::uint64_t sendInstructions = 0;
    std::uint64_t ctrlInstructions = 0;
    std::uint64_t sumActiveLanes = 0;
    std::uint64_t sumSimdWidth = 0;
    /** EU execution cycles the instruction stream would take under
     *  each compaction mode (sends/control counted equally in all). */
    std::array<std::uint64_t, compaction::kNumModes> euCyclesByMode{};
    std::array<std::uint64_t, compaction::kNumUtilBins> utilBins{};
    std::uint64_t memMessages = 0;
    std::uint64_t memLines = 0;
    std::uint64_t slmMessages = 0;
    std::uint64_t sccSwizzledLanes = 0;
    std::uint64_t issueSlotsUsed = 0;
    std::uint64_t threadsRetired = 0;

    void merge(const EuStats &other);

    /** SIMD efficiency: mean enabled lanes over mean SIMD width. */
    double
    simdEfficiency() const
    {
        return sumSimdWidth
            ? static_cast<double>(sumActiveLanes) / sumSimdWidth
            : 1.0;
    }

    std::uint64_t
    euCycles(compaction::Mode m) const
    {
        return euCyclesByMode[static_cast<unsigned>(m)];
    }
};

/** Callbacks from an EU into the GPU top level. */
class GpuHooks
{
  public:
    virtual ~GpuHooks() = default;
    /** A thread reached a workgroup barrier. */
    virtual void onBarrierArrive(int wg_id) = 0;
    /** A thread executed Halt (EOT). */
    virtual void onThreadDone(int wg_id) = 0;
};

/** Everything needed to start one subgroup on an EU thread slot. */
struct DispatchInfo
{
    int wgId = 0;
    unsigned subgroupIndex = 0;
    std::uint64_t globalIdBase = 0; ///< global id of channel 0
    unsigned localIdBase = 0;       ///< local id of channel 0
    LaneMask dispatchMask = 0;
    func::SlmMemory *slm = nullptr;
    const std::vector<std::uint32_t> *argWords = nullptr;
    std::uint32_t localSize = 0;
    std::uint32_t globalSize = 0;
    std::uint32_t numGroups = 0;
    std::uint32_t subgroupsPerGroup = 0;
    Cycle readyAt = 0; ///< dispatch latency
};

/**
 * Initializes a thread's architectural state per the dispatch payload
 * convention documented in kernel.hh (r0 header, id vectors, args).
 * Shared by the timing EU and the functional-only scheduler.
 */
void writeDispatchPayload(func::ThreadState &t, const isa::Kernel &kernel,
                          const DispatchInfo &info);

/** See file comment. */
class EuCore
{
  public:
    EuCore(unsigned id, const EuConfig &config, mem::MemSystem &mem,
           GpuHooks &hooks);

    /** Binds the kernel all subsequently dispatched threads run. */
    void bindKernel(const isa::Kernel &kernel, func::GlobalMemory &gmem);

    /** Index of a free thread slot, or -1. */
    int findFreeSlot() const;
    unsigned numFreeSlots() const;

    /** Starts a subgroup on a free slot. */
    void dispatch(const DispatchInfo &info);

    /** Unblocks every slot waiting on workgroup @p wg_id's barrier. */
    void releaseBarrier(int wg_id, Cycle now);

    /**
     * Advances the EU by one cycle and returns the updated
     * nextIssueAt() bound, which is this EU's next calendar event: the
     * event-driven simulator republishes the return value instead of
     * re-reading the EU. On an off-arbitration-period cycle the bound
     * is returned unchanged (still <= now, so the EU fires again on
     * the next visited cycle, exactly like the per-cycle loop).
     */
    Cycle tick(Cycle now);

    /**
     * Earliest cycle >= @p from at which some slot could issue, given
     * no intervening event (issue, dispatch, barrier release) changes
     * EU state — the simulator's idle-skip contract. Returns
     * kNeverIssues when no active slot exists (waiting on a barrier or
     * drained), in which case only an event on another EU can wake
     * this one.
     */
    Cycle nextIssueCycle(Cycle from) const;

    /**
     * Cached lower bound on the next cycle this EU can issue,
     * maintained by tick() and reset by dispatch()/releaseBarrier().
     * A value <= the current cycle means "unknown, scan on next tick".
     */
    Cycle nextIssueAt() const { return nextIssueAt_; }

    static constexpr Cycle kNeverIssues = ~Cycle{0};

    /** True when no slot holds live work. */
    bool idle() const;

    /**
     * Attaches an event sink (null disables tracing, the default).
     * Every instrumentation point is guarded by one null check, so a
     * sink-less EU runs the exact pre-observability code path.
     */
    void setSink(obs::EventSink *sink) { sink_ = sink; }

    /**
     * Attaches an issue-trace capture target (null, the default,
     * disables capture). While attached, every issued instruction
     * appends its functional facts to the stream of the issuing
     * subgroup. Capture changes no timing or stats.
     */
    void setIssueCapture(IssueTrace *trace) { capture_ = trace; }

    /**
     * Attaches a captured issue trace to replay (null runs the
     * functional model normally). While attached, issue() consumes
     * each slot's stream instead of stepping the interpreter: timing
     * is fully re-simulated, functional execution is skipped, and the
     * resulting stats are bit-identical to a full run of the same
     * mode (see issue_trace.hh for the invariant).
     */
    void setIssueReplay(const IssueTrace *trace) { replay_ = trace; }

    const EuStats &stats() const { return stats_; }
    const compaction::PlanCache &planCache() const { return planCache_; }
    const ExecPipe &fpu() const { return fpu_; }
    const ExecPipe &em() const { return em_; }
    const ExecPipe &sendPipe() const { return send_; }
    unsigned id() const { return id_; }
    const EuConfig &config() const { return config_; }

  private:
    enum class SlotStatus : std::uint8_t
    {
        Idle,
        Active,
        WaitBarrier,
        Done, ///< halted, slot not yet reclaimed
    };

    struct ThreadSlot
    {
        // Hot fields first: the arbiter's canIssue scan and
        // nextIssueCycle() stride over the slot array tens of millions
        // of times per launch and consult only status/readyAt/pipe, so
        // those live in the slot's leading cache line instead of after
        // the kilobyte of functional state (GRF view, scoreboard).
        SlotStatus status = SlotStatus::Idle;
        /**
         * Cached max(resumeAt, scoreboard-ready cycle) of the slot's
         * current instruction, plus its pipe. Both are pure functions
         * of slot state, which only changes when the slot issues, is
         * dispatched, or is released from a barrier — recomputed there
         * (updateSlotReady) so canIssue is a compare instead of a
         * scoreboard scan.
         */
        PipeKind pipe = PipeKind::Ctrl;
        Cycle readyAt = 0;
        Cycle resumeAt = 0;
        Cycle lastMemDone = 0;
        int wgId = -1;
        func::SlmMemory *slm = nullptr;
        /**
         * Decoded form of the instruction at state.ip(), refreshed
         * alongside readyAt/pipe by updateSlotReady(). Issue consumes
         * it directly instead of re-indexing the decode table.
         */
        const func::DecodedInstr *cur = nullptr;
        /** Raw view of the slot's replay stream, cached at dispatch so
         *  issueReplay() skips the vector-of-vectors indirection. */
        const IssueRecord *replayRecs = nullptr;
        std::uint32_t replayCount = 0;
        /** Next unconsumed record during replay. */
        std::uint32_t replayPos = 0;
        /** Flat subgroup id — the slot's issue-trace stream. */
        std::uint32_t streamId = 0;
        /**
         * Per-slot plan-cost memo: packed (width, elemBytes, mask) of
         * the slot's last ALU shape and the PlanCache entry it mapped
         * to. Slots keep one divergence pattern across whole basic
         * blocks while issues from different slots interleave, so this
         * front stays hot where a per-cache memo thrashes. The pointer
         * targets PlanCache storage that never moves, and a hit is
         * credited back via noteMemoHit() so the counters stay exact.
         */
        std::uint64_t planKey = 0;
        const compaction::PlanCosts *planCosts = nullptr;
        /**
         * Tracing only: earliest cycle the slot could have attempted
         * its current instruction (previous issue + 1, dispatch
         * readiness, or barrier release). The gap to the actual issue
         * cycle is the stall the issue event reports. Maintained only
         * while a sink is attached.
         */
        Cycle waitBase = 0;
        func::ThreadState state;
        Scoreboard sb;
    };

    bool canIssue(const ThreadSlot &slot, Cycle now) const;
    void updateSlotReady(ThreadSlot &slot);
    void issue(ThreadSlot &slot, Cycle now);
    /** Replay-mode issue(): consumes the slot's stream instead of
     *  stepping the interpreter; all timing paths are shared. */
    void issueReplay(ThreadSlot &slot, Cycle now);
    void issueAlu(ThreadSlot &slot, const func::DecodedInstr &d,
                  std::uint32_t ip, LaneMask exec, PipeKind pk,
                  Cycle now);
    void issueSend(ThreadSlot &slot, const func::DecodedInstr &d,
                   const func::StepResult &result, Cycle now);
    void issueSendReplay(ThreadSlot &slot, const func::DecodedInstr &d,
                         const IssueRecord &rec, Cycle now);
    /** Shared head of both send paths: occupancy, stats, barrier and
     *  fence handling. Returns true when a memory access follows. */
    bool issueSendHead(ThreadSlot &slot, const func::DecodedInstr &d,
                       std::uint32_t ip, LaneMask exec, bool is_barrier,
                       bool has_mem, Cycle now);
    /** Shared tail of both send paths: completion bookkeeping, the
     *  MemAccess event, and the load writeback claim. */
    void finishSend(ThreadSlot &slot, const func::DecodedInstr &d,
                    std::uint32_t ip, Cycle now, Cycle done,
                    unsigned lines, bool is_write, bool is_slm);
    /** Shared control-instruction path (including Halt retirement). */
    void issueCtrl(ThreadSlot &slot, const func::DecodedInstr &d,
                   std::uint32_t ip, LaneMask exec, bool is_halt,
                   Cycle now);
    void writePayload(ThreadSlot &slot, const DispatchInfo &info);
    /** Emits one InstrIssue event with stall attribution (sink_ set). */
    void emitIssue(const ThreadSlot &slot, const func::DecodedInstr &d,
                   std::uint32_t ip, LaneMask exec, PipeKind pk,
                   unsigned occ, const compaction::PlanCosts *costs,
                   Cycle now);
    std::uint8_t slotIndex(const ThreadSlot &slot) const
    {
        return static_cast<std::uint8_t>(&slot - slots_.data());
    }

    unsigned id_;
    EuConfig config_;
    mem::MemSystem &mem_;
    GpuHooks &hooks_;
    const isa::Kernel *kernel_ = nullptr;
    std::unique_ptr<func::Interpreter> interp_;
    /** Cached views into the interpreter's DecodedKernel. */
    const func::DecodedKernel *decoded_ = nullptr;
    const std::uint8_t *depPool_ = nullptr;
    std::vector<ThreadSlot> slots_;
    RotatingArbiter arbiter_;
    ExecPipe fpu_;
    ExecPipe em_;
    ExecPipe send_;
    EuStats stats_;
    compaction::PlanCache planCache_;
    /** Reused per-issue StepResult; avoids copying MemAccess around. */
    func::StepResult stepBuf_;
    /** Reused coalescer output buffer. */
    std::vector<Addr> lineBuf_;
    /** Reused arbiter pick buffer (capacity numThreads). */
    std::vector<unsigned> pickBuf_;
    /** Event sink; null (the default) disables all tracing work. */
    obs::EventSink *sink_ = nullptr;
    /** Issue-trace capture target; null disables capture. */
    IssueTrace *capture_ = nullptr;
    /** Issue trace being replayed; null runs the functional model. */
    const IssueTrace *replay_ = nullptr;
    /** Capture record of the in-flight issue (send paths fill the
     *  memory fields); null outside a captured issue. */
    IssueRecord *captureRec_ = nullptr;
    /** See nextIssueAt(). */
    Cycle nextIssueAt_ = 0;
    /** Slots in Idle/Done state, tracked so dispatch checks are O(1). */
    unsigned freeSlots_ = 0;
};

} // namespace iwc::eu

#endif // IWC_EU_EU_CORE_HH
