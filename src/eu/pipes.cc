// ExecPipe is header-only; this TU anchors the header into the library.
#include "eu/pipes.hh"
