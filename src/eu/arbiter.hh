/**
 * @file
 * Rotating-priority thread arbiter (pipeline stage 4 of Section 2.2):
 * selects up to N issueable EU threads per arbitration pass, rotating
 * the starting position so every thread gets fair service.
 */

#ifndef IWC_EU_ARBITER_HH
#define IWC_EU_ARBITER_HH

#include <vector>

namespace iwc::eu
{

/** See file comment. */
class RotatingArbiter
{
  public:
    explicit RotatingArbiter(unsigned slots) : slots_(slots) {}

    /**
     * Picks up to @p max_picks slot indices for which @p issueable
     * returns true, scanning from the rotating start position.
     */
    template <typename IssueableFn>
    std::vector<unsigned>
    pick(unsigned max_picks, IssueableFn &&issueable)
    {
        std::vector<unsigned> picks;
        for (unsigned i = 0; i < slots_ && picks.size() < max_picks;
             ++i) {
            const unsigned slot = (start_ + i) % slots_;
            if (issueable(slot))
                picks.push_back(slot);
        }
        if (!picks.empty())
            start_ = (picks.back() + 1) % slots_;
        return picks;
    }

  private:
    unsigned slots_;
    unsigned start_ = 0;
};

} // namespace iwc::eu

#endif // IWC_EU_ARBITER_HH
