/**
 * @file
 * Rotating-priority thread arbiter (pipeline stage 4 of Section 2.2):
 * selects up to N issueable EU threads per arbitration pass, rotating
 * the starting position so every thread gets fair service.
 */

#ifndef IWC_EU_ARBITER_HH
#define IWC_EU_ARBITER_HH

#include <algorithm>
#include <utility>
#include <vector>

namespace iwc::eu
{

/** See file comment. */
class RotatingArbiter
{
  public:
    explicit RotatingArbiter(unsigned slots) : slots_(slots) {}

    /**
     * Picks up to @p max_picks slot indices for which @p issueable
     * returns true, scanning from the rotating start position. Writes
     * into @p out (caller guarantees room for min(max_picks, slots)
     * entries) and returns the count — the issue loop calls this every
     * arbitration cycle, so no allocation.
     */
    template <typename IssueableFn>
    unsigned
    pickInto(unsigned max_picks, IssueableFn &&issueable, unsigned *out)
    {
        unsigned n = 0;
        for (unsigned i = 0; i < slots_ && n < max_picks; ++i) {
            // start_ < slots_ and i < slots_, so one conditional
            // subtract replaces the modulo (hot: every slot scan).
            unsigned slot = start_ + i;
            if (slot >= slots_)
                slot -= slots_;
            if (issueable(slot))
                out[n++] = slot;
        }
        if (n > 0) {
            start_ = out[n - 1] + 1;
            if (start_ >= slots_)
                start_ -= slots_;
        }
        return n;
    }

    /** Convenience wrapper returning the picks as a vector. */
    template <typename IssueableFn>
    std::vector<unsigned>
    pick(unsigned max_picks, IssueableFn &&issueable)
    {
        std::vector<unsigned> picks(std::min(max_picks, slots_));
        const unsigned n = pickInto(
            max_picks, std::forward<IssueableFn>(issueable), picks.data());
        picks.resize(n);
        return picks;
    }

  private:
    unsigned slots_;
    unsigned start_ = 0;
};

} // namespace iwc::eu

#endif // IWC_EU_ARBITER_HH
