#include "gpu/device.hh"

#include <bit>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "func/interp.hh"

namespace iwc::gpu
{

Arg
Arg::buffer(Addr base)
{
    fatal_if(base > 0xffffffffull,
             "buffer address exceeds the 32-bit device address space");
    return {static_cast<std::uint32_t>(base)};
}

Arg
Arg::f32(float v)
{
    return {std::bit_cast<std::uint32_t>(v)};
}

std::uint64_t
runKernelFunctional(const isa::Kernel &kernel, func::GlobalMemory &gmem,
                    std::uint64_t global_size, unsigned local_size,
                    const std::vector<std::uint32_t> &arg_words,
                    const InstrObserver &observer,
                    func::BackendKind backend)
{
    if (!observer) {
        return runKernelFunctionalDetailed(kernel, gmem, global_size,
                                           local_size, arg_words,
                                           nullptr, backend);
    }
    return runKernelFunctionalDetailed(
        kernel, gmem, global_size, local_size, arg_words,
        [&observer](const DetailedStep &step) {
            observer(*step.result->instr, step.result->execMask);
        },
        backend);
}

std::uint64_t
runKernelFunctionalDetailed(const isa::Kernel &kernel,
                            func::GlobalMemory &gmem,
                            std::uint64_t global_size,
                            unsigned local_size,
                            const std::vector<std::uint32_t> &arg_words,
                            const DetailedObserver &observer,
                            func::BackendKind backend)
{
    fatal_if(global_size == 0 || local_size == 0, "empty NDRange");
    const unsigned width = kernel.simdWidth();
    const unsigned num_wgs =
        static_cast<unsigned>(ceilDiv(global_size, local_size));
    const unsigned sg_per_group =
        static_cast<unsigned>(ceilDiv(local_size, width));

    func::Interpreter interp(kernel, gmem, backend);
    std::uint64_t instructions = 0;
    // One StepResult for the whole launch: step() rewrites every field
    // it reports, so reuse avoids a ~300-byte copy per instruction.
    func::StepResult r;

    for (unsigned wg = 0; wg < num_wgs; ++wg) {
        const std::uint64_t wg_base =
            static_cast<std::uint64_t>(wg) * local_size;
        const unsigned work_items = static_cast<unsigned>(
            std::min<std::uint64_t>(local_size, global_size - wg_base));
        const unsigned threads =
            static_cast<unsigned>(ceilDiv(work_items, width));

        std::unique_ptr<func::SlmMemory> slm;
        if (kernel.slmBytes() > 0)
            slm = std::make_unique<func::SlmMemory>(kernel.slmBytes());
        interp.setSlm(slm.get());

        std::vector<func::ThreadState> states(threads);
        std::vector<bool> at_barrier(threads, false);
        // Per-thread dynamic occurrence count of each static ip.
        std::vector<std::vector<std::uint64_t>> occurrences(
            threads, std::vector<std::uint64_t>(kernel.size(), 0));
        for (unsigned sg = 0; sg < threads; ++sg) {
            const unsigned lid_base = sg * width;
            eu::DispatchInfo info;
            info.wgId = static_cast<int>(wg);
            info.subgroupIndex = sg;
            info.globalIdBase = wg_base + lid_base;
            info.localIdBase = lid_base;
            info.dispatchMask =
                laneMaskForWidth(std::min(width, work_items - lid_base));
            info.slm = slm.get();
            info.argWords = &arg_words;
            info.localSize = local_size;
            info.globalSize = static_cast<std::uint32_t>(global_size);
            info.numGroups = num_wgs;
            info.subgroupsPerGroup = sg_per_group;
            eu::writeDispatchPayload(states[sg], kernel, info);
        }

        // Round-robin between barriers: each pass runs every runnable
        // thread up to its next barrier (or completion), then releases
        // the barrier once every live thread has arrived.
        while (true) {
            bool any_alive = false;
            for (unsigned sg = 0; sg < threads; ++sg) {
                func::ThreadState &t = states[sg];
                if (t.halted() || at_barrier[sg])
                    continue;
                while (!t.halted()) {
                    if (!observer) {
                        // Macro-step mask-stable straight-line runs in
                        // one dispatch. Runs never contain sends or
                        // control flow, so barrier/halt handling below
                        // is unaffected.
                        const unsigned n = interp.stepMacro(t);
                        if (n != 0) {
                            instructions += n;
                            continue;
                        }
                    }
                    interp.step(t, r);
                    ++instructions;
                    if (observer) {
                        DetailedStep step;
                        step.workgroup = wg;
                        step.subgroup = sg;
                        step.ip = r.ip;
                        step.occurrence = occurrences[sg][r.ip]++;
                        step.result = &r;
                        observer(step);
                    }
                    if (r.isBarrier) {
                        at_barrier[sg] = true;
                        break;
                    }
                }
            }
            unsigned live = 0, waiting = 0;
            for (unsigned sg = 0; sg < threads; ++sg) {
                if (!states[sg].halted()) {
                    ++live;
                    if (at_barrier[sg])
                        ++waiting;
                }
            }
            any_alive = live > 0;
            if (!any_alive)
                break;
            panic_if(waiting != live,
                     "kernel %s: threads diverged around a barrier",
                     kernel.name().c_str());
            for (unsigned sg = 0; sg < threads; ++sg)
                at_barrier[sg] = false;
        }
    }
    return instructions;
}

Device::Device(const GpuConfig &config) : config_(config)
{
}

Addr
Device::allocBuffer(std::uint64_t bytes)
{
    return gmem_.allocate(bytes);
}

void
Device::writeBuffer(Addr base, const void *data, std::uint64_t bytes)
{
    gmem_.write(base, data, bytes);
}

void
Device::readBuffer(Addr base, void *data, std::uint64_t bytes) const
{
    gmem_.read(base, data, bytes);
}

std::vector<std::uint32_t>
Device::argWords(const std::vector<Arg> &args)
{
    std::vector<std::uint32_t> words;
    words.reserve(args.size());
    for (const Arg &arg : args)
        words.push_back(arg.raw);
    return words;
}

LaunchStats
Device::launch(const isa::Kernel &kernel, std::uint64_t global_size,
               unsigned local_size, const std::vector<Arg> &args)
{
    Simulator sim(config_, gmem_);
    return sim.run(kernel, global_size, local_size, argWords(args));
}

LaunchStats
Device::launchCapture(const isa::Kernel &kernel,
                      std::uint64_t global_size, unsigned local_size,
                      const std::vector<Arg> &args,
                      eu::IssueTrace &trace)
{
    Simulator sim(config_, gmem_);
    sim.setIssueCapture(&trace);
    return sim.run(kernel, global_size, local_size, argWords(args));
}

LaunchStats
Device::launchReplay(const isa::Kernel &kernel,
                     std::uint64_t global_size, unsigned local_size,
                     const std::vector<Arg> &args,
                     const eu::IssueTrace &trace)
{
    Simulator sim(config_, gmem_);
    sim.setIssueReplay(&trace);
    return sim.run(kernel, global_size, local_size, argWords(args));
}

std::uint64_t
Device::launchFunctional(const isa::Kernel &kernel,
                         std::uint64_t global_size, unsigned local_size,
                         const std::vector<Arg> &args,
                         const InstrObserver &observer)
{
    return runKernelFunctional(kernel, gmem_, global_size, local_size,
                               argWords(args), observer,
                               config_.eu.backend);
}

std::uint64_t
Device::launchFunctionalDetailed(const isa::Kernel &kernel,
                                 std::uint64_t global_size,
                                 unsigned local_size,
                                 const std::vector<Arg> &args,
                                 const DetailedObserver &observer)
{
    return runKernelFunctionalDetailed(kernel, gmem_, global_size,
                                       local_size, argWords(args),
                                       observer, config_.eu.backend);
}

} // namespace iwc::gpu
