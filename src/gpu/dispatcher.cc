#include "gpu/dispatcher.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "obs/sink.hh"

namespace iwc::gpu
{

Dispatcher::Dispatcher(const isa::Kernel &kernel,
                       std::uint64_t global_size, unsigned local_size,
                       const std::vector<std::uint32_t> &arg_words,
                       obs::EventSink *sink)
    : kernel_(kernel), sink_(sink), globalSize_(global_size),
      localSize_(local_size), argWords_(arg_words)
{
    fatal_if(global_size == 0, "empty NDRange");
    fatal_if(local_size == 0, "zero workgroup size");
    numWgs_ = static_cast<unsigned>(ceilDiv(global_size, local_size));
    subgroupsPerGroup_ = static_cast<unsigned>(
        ceilDiv(local_size, kernel.simdWidth()));
    wgStates_.resize(numWgs_);
    for (unsigned wg = 0; wg < numWgs_; ++wg)
        totalThreads_ += wgThreadCount(wg);
    nextWgThreads_ = wgThreadCount(0);
}

unsigned
Dispatcher::wgWorkItems(unsigned wg) const
{
    const std::uint64_t base = static_cast<std::uint64_t>(wg) * localSize_;
    return static_cast<unsigned>(
        std::min<std::uint64_t>(localSize_, globalSize_ - base));
}

unsigned
Dispatcher::wgThreadCount(unsigned wg) const
{
    return static_cast<unsigned>(
        ceilDiv(wgWorkItems(wg), kernel_.simdWidth()));
}

unsigned
Dispatcher::ensureTotalSlots(
    const std::vector<std::unique_ptr<eu::EuCore>> &eus)
{
    if (totalSlots_ == 0) {
        for (const auto &eu : eus)
            totalSlots_ += eu->numFreeSlots();
        totalSlots_ += liveThreads_;
    }
    return totalSlots_;
}

bool
Dispatcher::tryDispatch(
    const std::vector<std::unique_ptr<eu::EuCore>> &eus, Cycle now,
    Cycle dispatch_latency)
{
    const unsigned total = ensureTotalSlots(eus);
    bool dispatched = false;
    while (nextWg_ < numWgs_) {
        const unsigned wg = nextWg_;
        const unsigned threads = nextWgThreads_;

        if (total - liveThreads_ < threads)
            return dispatched; // whole workgroups only (barriers)

        WgState &state = wgStates_[wg];
        state.threads = threads;
        if (kernel_.slmBytes() > 0) {
            state.slm =
                std::make_unique<func::SlmMemory>(kernel_.slmBytes());
        }

        const unsigned width = kernel_.simdWidth();
        const unsigned work_items = wgWorkItems(wg);
        for (unsigned sg = 0; sg < threads; ++sg) {
            // Balance: place each subgroup on the EU with most slots.
            eu::EuCore *target = nullptr;
            for (const auto &eu : eus) {
                if (!target ||
                    eu->numFreeSlots() > target->numFreeSlots()) {
                    target = eu.get();
                }
            }
            panic_if(!target || target->numFreeSlots() == 0,
                     "dispatch accounting broken");

            const unsigned lid_base = sg * width;
            const unsigned lanes =
                std::min(width, work_items - lid_base);

            eu::DispatchInfo info;
            info.wgId = static_cast<int>(wg);
            info.subgroupIndex = sg;
            info.globalIdBase =
                static_cast<std::uint64_t>(wg) * localSize_ + lid_base;
            info.localIdBase = lid_base;
            info.dispatchMask = laneMaskForWidth(lanes);
            info.slm = state.slm.get();
            info.argWords = &argWords_;
            info.localSize = localSize_;
            info.globalSize = static_cast<std::uint32_t>(globalSize_);
            info.numGroups = numWgs_;
            info.subgroupsPerGroup = subgroupsPerGroup_;
            info.readyAt = now + dispatch_latency;
            target->dispatch(info);
        }
        if (sink_ != nullptr) [[unlikely]] {
            obs::Event ev;
            ev.cycle = now;
            ev.kind = obs::EventKind::WgDispatch;
            ev.eu = obs::kGlobalEu;
            ev.wg = {static_cast<std::int32_t>(wg), threads};
            sink_->emit(ev);
        }
        liveThreads_ += threads;
        ++nextWg_;
        if (nextWg_ < numWgs_)
            nextWgThreads_ = wgThreadCount(nextWg_);
        dispatched = true;
    }
    return dispatched;
}

bool
Dispatcher::canDispatch(
    const std::vector<std::unique_ptr<eu::EuCore>> &eus) const
{
    if (nextWg_ == numWgs_)
        return false;
    unsigned free_slots;
    if (totalSlots_ != 0) {
        free_slots = totalSlots_ - liveThreads_;
    } else {
        free_slots = 0;
        for (const auto &eu : eus)
            free_slots += eu->numFreeSlots();
    }
    return free_slots >= nextWgThreads_;
}

void
Dispatcher::barrierArrive(int wg_id)
{
    WgState &state = wgStates_.at(static_cast<unsigned>(wg_id));
    ++state.barrierArrived;
    panic_if(state.barrierArrived + state.done > state.threads,
             "barrier arrivals exceed workgroup population");
    if (state.barrierArrived + state.done == state.threads) {
        state.barrierArrived = 0;
        pendingReleases_.push_back(wg_id);
    }
}

void
Dispatcher::threadDone(int wg_id)
{
    WgState &state = wgStates_.at(static_cast<unsigned>(wg_id));
    ++state.done;
    --liveThreads_;
    panic_if(state.done > state.threads, "too many thread completions");
    if (state.done == state.threads) {
        ++wgsCompleted_;
        state.slm.reset();
    }
}

std::vector<int>
Dispatcher::takeBarrierReleases()
{
    std::vector<int> releases;
    releases.swap(pendingReleases_);
    return releases;
}

bool
Dispatcher::allWorkDone() const
{
    return nextWg_ == numWgs_ && wgsCompleted_ == numWgs_;
}

} // namespace iwc::gpu
