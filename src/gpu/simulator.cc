#include "gpu/simulator.hh"

#include <algorithm>

#include "common/logging.hh"
#include "gpu/event_calendar.hh"
#include "obs/sink.hh"

namespace iwc::gpu
{

void
LaunchStats::writeTo(stats::Group &group) const
{
    using compaction::Mode;
    group.setScalar("total_cycles", static_cast<double>(totalCycles));
    group.setScalar("instructions",
                    static_cast<double>(eu.instructions));
    group.setScalar("alu_instructions",
                    static_cast<double>(eu.aluInstructions));
    group.setScalar("send_instructions",
                    static_cast<double>(eu.sendInstructions));
    group.setScalar("ctrl_instructions",
                    static_cast<double>(eu.ctrlInstructions));
    group.setScalar("simd_efficiency", simdEfficiency());
    group.setScalar("eu_cycles_baseline",
                    static_cast<double>(eu.euCycles(Mode::Baseline)));
    group.setScalar("eu_cycles_ivb",
                    static_cast<double>(eu.euCycles(Mode::IvbOpt)));
    group.setScalar("eu_cycles_bcc",
                    static_cast<double>(eu.euCycles(Mode::Bcc)));
    group.setScalar("eu_cycles_scc",
                    static_cast<double>(eu.euCycles(Mode::Scc)));
    group.setScalar("fpu_busy_cycles",
                    static_cast<double>(fpuBusyCycles));
    group.setScalar("em_busy_cycles",
                    static_cast<double>(emBusyCycles));
    group.setScalar("l3_hits", static_cast<double>(l3Hits));
    group.setScalar("l3_misses", static_cast<double>(l3Misses));
    group.setScalar("llc_hits", static_cast<double>(llcHits));
    group.setScalar("llc_misses", static_cast<double>(llcMisses));
    group.setScalar("dram_lines", static_cast<double>(dramLines));
    group.setScalar("dc_lines", static_cast<double>(dcLines));
    group.setScalar("dc_throughput", dcThroughput());
    group.setScalar("slm_accesses", static_cast<double>(slmAccesses));
    group.setScalar("plan_cache_hits",
                    static_cast<double>(planCacheHits));
    group.setScalar("plan_cache_misses",
                    static_cast<double>(planCacheMisses));
    group.setScalar("idle_cycles_skipped",
                    static_cast<double>(idleCyclesSkipped));
    group.setScalar("idle_skips", static_cast<double>(idleSkips));
    group.setScalar("mem_messages",
                    static_cast<double>(eu.memMessages));
    group.setScalar("mem_lines", static_cast<double>(eu.memLines));
    group.setScalar("lines_per_message", avgLinesPerMessage);
    group.setScalar("workgroups", workgroups);
    group.setScalar("threads", static_cast<double>(threads));
}

Simulator::Simulator(const GpuConfig &config, func::GlobalMemory &gmem)
    : config_(config), gmem_(gmem),
      mem_(std::make_unique<mem::MemSystem>(config.mem))
{
    for (unsigned i = 0; i < config.numEus; ++i) {
        eus_.push_back(std::make_unique<eu::EuCore>(i, config.eu, *mem_,
                                                    *this));
        eus_.back()->setSink(config.sink);
    }
}

void
Simulator::onBarrierArrive(int wg_id)
{
    dispatcher_->barrierArrive(wg_id);
}

void
Simulator::onThreadDone(int wg_id)
{
    dispatcher_->threadDone(wg_id);
}

Cycle
Simulator::runReferenceLoop(Dispatcher &dispatcher,
                            const isa::Kernel &kernel,
                            std::uint64_t &idle_cycles_skipped,
                            std::uint64_t &idle_skips)
{
    Cycle cycle = 0;
    while (true) {
        dispatcher.tryDispatch(eus_, cycle, config_.dispatchLatency);
        for (auto &eu : eus_) {
            // Inline copy of tick()'s idle early-out: saves the call
            // for EUs that provably cannot issue this cycle.
            if (cycle >= eu->nextIssueAt())
                eu->tick(cycle);
        }
        if (dispatcher.hasPendingReleases())
            for (const int wg : dispatcher.takeBarrierReleases())
                for (auto &eu : eus_)
                    eu->releaseBarrier(wg, cycle);

        if (dispatcher.allWorkDone()) {
            bool all_idle = true;
            for (const auto &eu : eus_)
                all_idle = all_idle && eu->idle();
            if (all_idle)
                break;
        }

        // Next-event estimation: between here and the next issue,
        // dispatch, or barrier-release event no EU state changes, and
        // every one of those events requires either a dispatchable
        // workgroup (checked below) or some slot reaching its cached
        // ready cycle — so jump straight there instead of ticking
        // empty cycles. A pending workgroup that now fits must be
        // placed at cycle + 1 (slots freed during this cycle's tick).
        Cycle next = cycle + 1;
        if (!dispatcher.canDispatch(eus_)) {
            Cycle best = eu::EuCore::kNeverIssues;
            for (const auto &eu : eus_)
                best = std::min(best, eu->nextIssueAt());
            if (best == eu::EuCore::kNeverIssues)
                next = config_.maxCycles; // deadlock: land on the guard
            else
                next = std::max(best, cycle + 1);
        }
        if (next > cycle + 1) {
            idle_cycles_skipped += next - (cycle + 1);
            ++idle_skips;
            if (config_.sink != nullptr) [[unlikely]] {
                obs::Event ev;
                ev.cycle = cycle + 1; // first cycle jumped over
                ev.kind = obs::EventKind::IdleSkip;
                ev.eu = obs::kGlobalEu;
                ev.skip = {next};
                config_.sink->emit(ev);
            }
        }
        cycle = next;
        fatal_if(cycle >= config_.maxCycles,
                 "kernel %s exceeded the %llu-cycle guard (deadlock?)",
                 kernel.name().c_str(),
                 static_cast<unsigned long long>(config_.maxCycles));
    }
    return cycle;
}

Cycle
Simulator::runEventLoop(Dispatcher &dispatcher,
                        const isa::Kernel &kernel,
                        std::uint64_t &idle_cycles_skipped,
                        std::uint64_t &idle_skips)
{
    // The calendar mirrors each EU's live nextIssueAt() bound: ticks
    // republish their return value, and the two operations that reset
    // an EU's scan state behind the calendar's back — dispatch and
    // barrier release — are followed by a wholesale republish. The
    // loop therefore visits exactly the cycle set of the reference
    // loop (same next-cycle formula over the same values), fires only
    // the EUs whose entry is due, and folds the global minimum into
    // the same walk instead of re-scanning every EU afterwards.
    const std::size_t num_eus = eus_.size();
    EventCalendar calendar(num_eus);
    Cycle cycle = 0;
    while (true) {
        if (dispatcher.hasPendingWork() &&
            dispatcher.tryDispatch(eus_, cycle,
                                   config_.dispatchLatency)) {
            for (std::size_t i = 0; i < num_eus; ++i)
                calendar.publish(i, eus_[i]->nextIssueAt());
        }

        Cycle best = EventCalendar::kNever;
        for (std::size_t i = 0; i < num_eus; ++i) {
            Cycle at = calendar.at(i);
            if (cycle >= at) {
                at = eus_[i]->tick(cycle);
                calendar.publish(i, at);
            }
            best = std::min(best, at);
        }

        if (dispatcher.hasPendingReleases()) {
            for (const int wg : dispatcher.takeBarrierReleases())
                for (auto &eu : eus_)
                    eu->releaseBarrier(wg, cycle);
            for (std::size_t i = 0; i < num_eus; ++i)
                calendar.publish(i, eus_[i]->nextIssueAt());
            best = calendar.globalMin();
        }

        if (dispatcher.allWorkDone()) {
            bool all_idle = true;
            for (const auto &eu : eus_)
                all_idle = all_idle && eu->idle();
            if (all_idle)
                break;
        }

        Cycle next = cycle + 1;
        if (!dispatcher.canDispatch(eus_)) {
            if (best == EventCalendar::kNever)
                next = config_.maxCycles; // deadlock: land on the guard
            else
                next = std::max(best, cycle + 1);
        }
        if (next > cycle + 1) {
            idle_cycles_skipped += next - (cycle + 1);
            ++idle_skips;
            if (config_.sink != nullptr) [[unlikely]] {
                obs::Event ev;
                ev.cycle = cycle + 1; // first cycle jumped over
                ev.kind = obs::EventKind::IdleSkip;
                ev.eu = obs::kGlobalEu;
                ev.skip = {next};
                config_.sink->emit(ev);
            }
        }
        cycle = next;
        fatal_if(cycle >= config_.maxCycles,
                 "kernel %s exceeded the %llu-cycle guard (deadlock?)",
                 kernel.name().c_str(),
                 static_cast<unsigned long long>(config_.maxCycles));
    }
    return cycle;
}

LaunchStats
Simulator::run(const isa::Kernel &kernel, std::uint64_t global_size,
               unsigned local_size,
               const std::vector<std::uint32_t> &arg_words)
{
    Dispatcher dispatcher(kernel, global_size, local_size, arg_words,
                          config_.sink);
    dispatcher_ = &dispatcher;

    for (auto &eu : eus_)
        eu->bindKernel(kernel, gmem_);

    if (capture_ != nullptr) {
        capture_->clear();
        capture_->streams.resize(
            static_cast<std::size_t>(dispatcher.numWorkgroups()) *
            dispatcher.subgroupsPerGroup());
    }
    for (auto &eu : eus_) {
        eu->setIssueCapture(capture_);
        eu->setIssueReplay(replay_);
    }

    std::uint64_t idle_cycles_skipped = 0;
    std::uint64_t idle_skips = 0;
    const Cycle cycle = config_.engine == SimEngine::Reference
        ? runReferenceLoop(dispatcher, kernel, idle_cycles_skipped,
                           idle_skips)
        : runEventLoop(dispatcher, kernel, idle_cycles_skipped,
                       idle_skips);
    dispatcher_ = nullptr;

    LaunchStats stats;
    stats.totalCycles = cycle + 1;
    stats.idleCyclesSkipped = idle_cycles_skipped;
    stats.idleSkips = idle_skips;
    for (const auto &eu : eus_) {
        stats.eu.merge(eu->stats());
        stats.fpuBusyCycles += eu->fpu().busyCycles();
        stats.emBusyCycles += eu->em().busyCycles();
        stats.planCacheHits += eu->planCache().hits();
        stats.planCacheMisses += eu->planCache().misses();
    }
    stats.l3Hits = mem_->l3().hits();
    stats.l3Misses = mem_->l3().misses();
    stats.llcHits = mem_->llc().hits();
    stats.llcMisses = mem_->llc().misses();
    stats.dramLines = mem_->dram().linesTransferred();
    stats.dcLines = mem_->dataCluster().linesTransferred();
    stats.slmAccesses = mem_->slm().accesses();
    stats.avgLinesPerMessage = mem_->avgLinesPerMessage();
    stats.workgroups = dispatcher.numWorkgroups();
    stats.threads = dispatcher.totalThreads();
    return stats;
}

} // namespace iwc::gpu
