#include "gpu/gpu_config.hh"

#include <charconv>
#include <functional>
#include <string_view>
#include <vector>

#include "common/hash.hh"
#include "common/logging.hh"
#include "compaction/cycle_plan.hh"

namespace iwc::gpu
{

GpuConfig
ivbConfig()
{
    return GpuConfig{};
}

GpuConfig
ivbConfig(compaction::Mode mode)
{
    GpuConfig config;
    config.eu.mode = mode;
    return config;
}

compaction::Mode
parseMode(const std::string &name)
{
    if (name == "baseline")
        return compaction::Mode::Baseline;
    if (name == "ivb" || name == "ivb-opt")
        return compaction::Mode::IvbOpt;
    if (name == "bcc")
        return compaction::Mode::Bcc;
    if (name == "scc")
        return compaction::Mode::Scc;
    fatal("unknown compaction mode '%s'", name.c_str());
}

SimEngine
parseSimEngine(const std::string &name)
{
    if (name == "event")
        return SimEngine::Event;
    if (name == "reference" || name == "ref")
        return SimEngine::Reference;
    fatal("unknown simulation engine '%s' (event|reference)",
          name.c_str());
}

namespace
{

/**
 * One canonically-encoded field: how to print it and how to parse it
 * back. Encode and decode share this single table, so a field added
 * here is automatically covered by both directions (and by the
 * digest, which hashes the encoded text).
 */
struct Field
{
    const char *key;
    std::function<std::uint64_t(const GpuConfig &)> get;
    std::function<bool(GpuConfig &, std::string_view)> set;
};

bool
parseU64(std::string_view v, std::uint64_t &out)
{
    const auto *end = v.data() + v.size();
    const auto r = std::from_chars(v.data(), end, out);
    return r.ec == std::errc() && r.ptr == end && !v.empty();
}

template <typename T>
Field
numField(const char *key, T GpuConfig::*member)
{
    return {key,
            [member](const GpuConfig &c) {
                return static_cast<std::uint64_t>(c.*member);
            },
            [member](GpuConfig &c, std::string_view v) {
                std::uint64_t n = 0;
                if (!parseU64(v, n))
                    return false;
                c.*member = static_cast<T>(n);
                return true;
            }};
}

template <typename T>
Field
numField(const char *key, T eu::EuConfig::*member)
{
    return {key,
            [member](const GpuConfig &c) {
                return static_cast<std::uint64_t>(c.eu.*member);
            },
            [member](GpuConfig &c, std::string_view v) {
                std::uint64_t n = 0;
                if (!parseU64(v, n))
                    return false;
                c.eu.*member = static_cast<T>(n);
                return true;
            }};
}

template <typename T>
Field
numField(const char *key, T mem::MemConfig::*member)
{
    return {key,
            [member](const GpuConfig &c) {
                return static_cast<std::uint64_t>(c.mem.*member);
            },
            [member](GpuConfig &c, std::string_view v) {
                std::uint64_t n = 0;
                if (!parseU64(v, n))
                    return false;
                c.mem.*member = static_cast<T>(n);
                return true;
            }};
}

/**
 * Every simulation-relevant config field in canonical order. New
 * fields must be appended here or encodeCanonical silently under-
 * specifies the cache key (test_svc's sensitivity test walks this
 * table, so a field that is added but not listed still fails CI when
 * it is exercised through the digest test's mutation set).
 */
const std::vector<Field> &
fieldTable()
{
    static const std::vector<Field> table = {
        numField("num_eus", &GpuConfig::numEus),
        numField("dispatch_latency", &GpuConfig::dispatchLatency),
        numField("max_cycles", &GpuConfig::maxCycles),
        numField("eu.num_threads", &eu::EuConfig::numThreads),
        {"eu.mode",
         [](const GpuConfig &c) {
             return static_cast<std::uint64_t>(c.eu.mode);
         },
         [](GpuConfig &c, std::string_view v) {
             std::uint64_t n = 0;
             if (!parseU64(v, n) || n >= compaction::kNumModes)
                 return false;
             c.eu.mode = static_cast<compaction::Mode>(n);
             return true;
         }},
        {"eu.backend",
         [](const GpuConfig &c) {
             return static_cast<std::uint64_t>(c.eu.backend);
         },
         [](GpuConfig &c, std::string_view v) {
             std::uint64_t n = 0;
             if (!parseU64(v, n) ||
                 n > static_cast<std::uint64_t>(func::BackendKind::Vector))
                 return false;
             c.eu.backend = static_cast<func::BackendKind>(n);
             return true;
         }},
        numField("eu.issue_width", &eu::EuConfig::issueWidth),
        numField("eu.arb_period", &eu::EuConfig::arbitrationPeriod),
        numField("eu.fpu_latency", &eu::EuConfig::fpuLatency),
        numField("eu.em_latency", &eu::EuConfig::emLatency),
        numField("eu.send_issue_latency", &eu::EuConfig::sendIssueLatency),
        numField("eu.writeback_latency", &eu::EuConfig::writebackLatency),
        numField("eu.ctrl_cycles", &eu::EuConfig::ctrlCycles),
        numField("eu.send_cycles", &eu::EuConfig::sendCycles),
        numField("mem.l3_bytes", &mem::MemConfig::l3Bytes),
        numField("mem.l3_ways", &mem::MemConfig::l3Ways),
        numField("mem.l3_banks", &mem::MemConfig::l3Banks),
        numField("mem.l3_latency", &mem::MemConfig::l3Latency),
        numField("mem.llc_bytes", &mem::MemConfig::llcBytes),
        numField("mem.llc_ways", &mem::MemConfig::llcWays),
        numField("mem.llc_banks", &mem::MemConfig::llcBanks),
        numField("mem.llc_latency", &mem::MemConfig::llcLatency),
        numField("mem.dc_lines_per_cycle", &mem::MemConfig::dcLinesPerCycle),
        numField("mem.dram_latency", &mem::MemConfig::dramLatency),
        numField("mem.dram_cycles_per_line",
                 &mem::MemConfig::dramCyclesPerLine),
        numField("mem.slm_latency", &mem::MemConfig::slmLatency),
        numField("mem.slm_banks", &mem::MemConfig::slmBanks),
        numField("mem.slm_bank_bytes", &mem::MemConfig::slmBankBytes),
        {"mem.perfect_l3",
         [](const GpuConfig &c) {
             return static_cast<std::uint64_t>(c.mem.perfectL3);
         },
         [](GpuConfig &c, std::string_view v) {
             if (v != "0" && v != "1")
                 return false;
             c.mem.perfectL3 = v == "1";
             return true;
         }},
    };
    return table;
}

constexpr const char *kConfigVersionLine = "iwc_config=1";

} // namespace

std::string
encodeCanonical(const GpuConfig &config)
{
    std::string text = kConfigVersionLine;
    text += '\n';
    for (const Field &f : fieldTable()) {
        text += f.key;
        text += '=';
        text += std::to_string(f.get(config));
        text += '\n';
    }
    return text;
}

bool
decodeCanonical(const std::string &text, GpuConfig &out)
{
    out = GpuConfig{};
    std::string_view rest = text;
    bool sawVersion = false;
    while (!rest.empty()) {
        const std::size_t nl = rest.find('\n');
        const std::string_view line =
            nl == std::string_view::npos ? rest : rest.substr(0, nl);
        rest = nl == std::string_view::npos ? std::string_view{}
                                            : rest.substr(nl + 1);
        if (line.empty())
            continue;
        if (!sawVersion) {
            if (line != kConfigVersionLine)
                return false;
            sawVersion = true;
            continue;
        }
        const std::size_t eq = line.find('=');
        if (eq == std::string_view::npos)
            return false;
        const std::string_view key = line.substr(0, eq);
        const std::string_view value = line.substr(eq + 1);
        bool known = false;
        for (const Field &f : fieldTable()) {
            if (key != f.key)
                continue;
            known = true;
            if (!f.set(out, value))
                return false;
            break;
        }
        if (!known)
            return false;
    }
    return sawVersion;
}

std::uint64_t
configDigest(const GpuConfig &config)
{
    return fnv64(encodeCanonical(config));
}

GpuConfig
applyOptions(GpuConfig config, const OptionMap &opts)
{
    if (opts.has("mode"))
        config.eu.mode = parseMode(opts.getString("mode", ""));
    if (opts.has("backend")) {
        const std::string name = opts.getString("backend", "");
        if (!func::parseBackendKind(name, config.eu.backend))
            fatal("unknown backend '%s' (auto|scalar|vector)",
                  name.c_str());
    }
    // Engine selection never enters the canonical encoding: both
    // engines are bit-identical by construction (see SimEngine).
    if (opts.has("engine"))
        config.engine = parseSimEngine(opts.getString("engine", ""));
    config.numEus = static_cast<unsigned>(
        opts.getInt("eus", config.numEus));
    config.eu.numThreads = static_cast<unsigned>(
        opts.getInt("threads", config.eu.numThreads));
    config.mem.dcLinesPerCycle = static_cast<unsigned>(
        opts.getInt("dc", config.mem.dcLinesPerCycle));
    config.mem.perfectL3 = opts.getBool("perfect_l3",
                                        config.mem.perfectL3);
    config.eu.issueWidth = static_cast<unsigned>(
        opts.getInt("issue_width", config.eu.issueWidth));
    config.eu.arbitrationPeriod = static_cast<unsigned>(
        opts.getInt("arb_period", config.eu.arbitrationPeriod));
    config.mem.dramLatency = static_cast<Cycle>(
        opts.getInt("dram_latency",
                    static_cast<std::int64_t>(config.mem.dramLatency)));
    config.mem.l3Bytes = static_cast<std::uint64_t>(
        opts.getInt("l3_kb",
                    static_cast<std::int64_t>(config.mem.l3Bytes / 1024)))
        * 1024;
    config.mem.llcBytes = static_cast<std::uint64_t>(
        opts.getInt("llc_kb",
                    static_cast<std::int64_t>(
                        config.mem.llcBytes / 1024))) * 1024;
    return config;
}

} // namespace iwc::gpu
