#include "gpu/gpu_config.hh"

#include "common/logging.hh"

namespace iwc::gpu
{

GpuConfig
ivbConfig()
{
    return GpuConfig{};
}

GpuConfig
ivbConfig(compaction::Mode mode)
{
    GpuConfig config;
    config.eu.mode = mode;
    return config;
}

compaction::Mode
parseMode(const std::string &name)
{
    if (name == "baseline")
        return compaction::Mode::Baseline;
    if (name == "ivb" || name == "ivb-opt")
        return compaction::Mode::IvbOpt;
    if (name == "bcc")
        return compaction::Mode::Bcc;
    if (name == "scc")
        return compaction::Mode::Scc;
    fatal("unknown compaction mode '%s'", name.c_str());
}

GpuConfig
applyOptions(GpuConfig config, const OptionMap &opts)
{
    if (opts.has("mode"))
        config.eu.mode = parseMode(opts.getString("mode", ""));
    if (opts.has("backend")) {
        const std::string name = opts.getString("backend", "");
        if (!func::parseBackendKind(name, config.eu.backend))
            fatal("unknown backend '%s' (auto|scalar|vector)",
                  name.c_str());
    }
    config.numEus = static_cast<unsigned>(
        opts.getInt("eus", config.numEus));
    config.eu.numThreads = static_cast<unsigned>(
        opts.getInt("threads", config.eu.numThreads));
    config.mem.dcLinesPerCycle = static_cast<unsigned>(
        opts.getInt("dc", config.mem.dcLinesPerCycle));
    config.mem.perfectL3 = opts.getBool("perfect_l3",
                                        config.mem.perfectL3);
    config.eu.issueWidth = static_cast<unsigned>(
        opts.getInt("issue_width", config.eu.issueWidth));
    config.eu.arbitrationPeriod = static_cast<unsigned>(
        opts.getInt("arb_period", config.eu.arbitrationPeriod));
    config.mem.dramLatency = static_cast<Cycle>(
        opts.getInt("dram_latency",
                    static_cast<std::int64_t>(config.mem.dramLatency)));
    config.mem.l3Bytes = static_cast<std::uint64_t>(
        opts.getInt("l3_kb",
                    static_cast<std::int64_t>(config.mem.l3Bytes / 1024)))
        * 1024;
    config.mem.llcBytes = static_cast<std::uint64_t>(
        opts.getInt("llc_kb",
                    static_cast<std::int64_t>(
                        config.mem.llcBytes / 1024))) * 1024;
    return config;
}

} // namespace iwc::gpu
