/**
 * @file
 * Next-event calendar for the event-driven simulator core. Each EU
 * publishes its earliest actionable cycle (issue-ready, retire,
 * post-dispatch or post-barrier rescan); the simulator jumps straight
 * to the global minimum and touches only the EUs whose entry fired.
 *
 * The calendar is a flat per-EU array rather than a binary heap on
 * purpose: the fan-in is the EU count (six in the Table 3 machine,
 * never more than a few dozen), entries are republished on almost
 * every visited cycle, and the consumer folds the global minimum
 * while it walks the firing set anyway — so a heap's O(log n)
 * reheapify per update would cost more than the O(n) fold it tries
 * to avoid. The structure keeps the event-publication contract
 * explicit and swappable should the EU count ever grow by orders of
 * magnitude.
 */

#ifndef IWC_GPU_EVENT_CALENDAR_HH
#define IWC_GPU_EVENT_CALENDAR_HH

#include <algorithm>
#include <vector>

#include "common/types.hh"

namespace iwc::gpu
{

/** See file comment. */
class EventCalendar
{
  public:
    /** All entries start at cycle 0: every EU fires on the first visit. */
    explicit EventCalendar(std::size_t num_eus) : next_(num_eus, 0) {}

    /** Publishes EU @p eu's earliest actionable cycle. */
    void
    publish(std::size_t eu, Cycle at)
    {
        next_[eu] = at;
    }

    /** EU @p eu's published entry. */
    Cycle
    at(std::size_t eu) const
    {
        return next_[eu];
    }

    /** Earliest published event over all EUs. */
    Cycle
    globalMin() const
    {
        Cycle best = kNever;
        for (const Cycle at : next_)
            best = std::min(best, at);
        return best;
    }

    /** Entry meaning "this EU cannot act without an external event". */
    static constexpr Cycle kNever = ~Cycle{0};

  private:
    std::vector<Cycle> next_;
};

} // namespace iwc::gpu

#endif // IWC_GPU_EVENT_CALENDAR_HH
