/**
 * @file
 * Whole-GPU cycle-level simulator (the role GPGenSim plays in the
 * paper): EUs + data cluster + caches + dispatcher stepped in
 * lock-step until the launch drains.
 */

#ifndef IWC_GPU_SIMULATOR_HH
#define IWC_GPU_SIMULATOR_HH

#include <memory>
#include <vector>

#include "eu/eu_core.hh"
#include "func/memory.hh"
#include "gpu/dispatcher.hh"
#include "gpu/gpu_config.hh"
#include "mem/mem_system.hh"
#include "stats/stats.hh"

namespace iwc::gpu
{

/** Results of one kernel launch. */
struct LaunchStats
{
    Cycle totalCycles = 0;
    eu::EuStats eu; ///< merged across EUs

    std::uint64_t fpuBusyCycles = 0;
    std::uint64_t emBusyCycles = 0;

    std::uint64_t l3Hits = 0;
    std::uint64_t l3Misses = 0;
    std::uint64_t llcHits = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t dramLines = 0;
    std::uint64_t dcLines = 0;
    std::uint64_t slmAccesses = 0;
    double avgLinesPerMessage = 0;

    /** Cycle-plan memoization effectiveness, merged across EUs. */
    std::uint64_t planCacheHits = 0;
    std::uint64_t planCacheMisses = 0;
    /** Dead cycles the simulator's next-event skip jumped over. */
    std::uint64_t idleCyclesSkipped = 0;
    /** Number of idle-skip jumps taken. */
    std::uint64_t idleSkips = 0;

    unsigned workgroups = 0;
    std::uint64_t threads = 0;

    /** Achieved data-cluster throughput in lines per cycle. */
    double
    dcThroughput() const
    {
        return totalCycles
            ? static_cast<double>(dcLines) / totalCycles
            : 0.0;
    }

    /** SIMD efficiency of the executed instruction stream. */
    double simdEfficiency() const { return eu.simdEfficiency(); }

    /** Exports every scalar into a stats group for dumping. */
    void writeTo(stats::Group &group) const;

    /**
     * Fractional EU-cycle reduction of @p mode relative to @p base
     * (both computed from the same instruction stream).
     */
    double
    euCycleReduction(compaction::Mode mode,
                     compaction::Mode base =
                         compaction::Mode::IvbOpt) const
    {
        const double b = static_cast<double>(eu.euCycles(base));
        return b == 0 ? 0.0 : 1.0 - eu.euCycles(mode) / b;
    }
};

/** See file comment. */
class Simulator : public eu::GpuHooks
{
  public:
    Simulator(const GpuConfig &config, func::GlobalMemory &gmem);
    ~Simulator() override = default;

    /** Runs one kernel launch to completion. */
    LaunchStats run(const isa::Kernel &kernel, std::uint64_t global_size,
                    unsigned local_size,
                    const std::vector<std::uint32_t> &arg_words);

    // GpuHooks
    void onBarrierArrive(int wg_id) override;
    void onThreadDone(int wg_id) override;

    /**
     * Captures the launch's issue trace into @p trace (cleared and
     * sized by run()). Null disables capture. See eu/issue_trace.hh.
     */
    void setIssueCapture(eu::IssueTrace *trace) { capture_ = trace; }

    /**
     * Replays @p trace instead of executing functionally; the launch
     * must be identical to the captured one in everything but the
     * compaction mode. Null (default) executes normally.
     */
    void setIssueReplay(const eu::IssueTrace *trace) { replay_ = trace; }

    const mem::MemSystem &memSystem() const { return *mem_; }

  private:
    /**
     * The two simulation loops (SimEngine). Both run the launch to
     * its final visited cycle, accumulating the idle-skip counters;
     * they are bit-identical by construction and gated by
     * tests/test_sim_engines.cc.
     */
    Cycle runReferenceLoop(Dispatcher &dispatcher,
                           const isa::Kernel &kernel,
                           std::uint64_t &idle_cycles_skipped,
                           std::uint64_t &idle_skips);
    Cycle runEventLoop(Dispatcher &dispatcher, const isa::Kernel &kernel,
                       std::uint64_t &idle_cycles_skipped,
                       std::uint64_t &idle_skips);

    GpuConfig config_;
    func::GlobalMemory &gmem_;
    std::unique_ptr<mem::MemSystem> mem_;
    std::vector<std::unique_ptr<eu::EuCore>> eus_;
    Dispatcher *dispatcher_ = nullptr; ///< valid only inside run()
    eu::IssueTrace *capture_ = nullptr;
    const eu::IssueTrace *replay_ = nullptr;
};

} // namespace iwc::gpu

#endif // IWC_GPU_SIMULATOR_HH
