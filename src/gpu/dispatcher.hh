/**
 * @file
 * Thread dispatcher: splits an OpenCL-style NDRange into workgroups
 * and SIMD subgroups (EU threads), places whole workgroups onto EUs as
 * slots free up, and tracks workgroup barriers and completion.
 */

#ifndef IWC_GPU_DISPATCHER_HH
#define IWC_GPU_DISPATCHER_HH

#include <memory>
#include <vector>

#include "eu/eu_core.hh"
#include "func/memory.hh"
#include "isa/kernel.hh"

namespace iwc::obs
{
class EventSink;
}

namespace iwc::gpu
{

/** See file comment. */
class Dispatcher
{
  public:
    /** @param sink optional observability sink (WgDispatch events). */
    Dispatcher(const isa::Kernel &kernel, std::uint64_t global_size,
               unsigned local_size,
               const std::vector<std::uint32_t> &arg_words,
               obs::EventSink *sink = nullptr);

    /**
     * Places as many whole pending workgroups as the free thread
     * slots across @p eus allow.
     */
    void tryDispatch(const std::vector<std::unique_ptr<eu::EuCore>> &eus,
                     Cycle now, Cycle dispatch_latency);

    /**
     * True when the next pending workgroup would fit right now. Free
     * slots only change when a thread retires (an issue event), so a
     * false answer stays false until some EU issues — which lets the
     * simulator skip idle cycles without missing a dispatch.
     */
    bool
    canDispatch(const std::vector<std::unique_ptr<eu::EuCore>> &eus) const;

    /** GpuHooks plumbing (called by EUs through the simulator). */
    void barrierArrive(int wg_id);
    void threadDone(int wg_id);

    /** Workgroups whose barrier released this cycle (drains the list). */
    std::vector<int> takeBarrierReleases();

    /** Cheap per-cycle guard for takeBarrierReleases. */
    bool hasPendingReleases() const { return !pendingReleases_.empty(); }

    /** True once every workgroup has fully completed. */
    bool allWorkDone() const;

    unsigned numWorkgroups() const { return numWgs_; }
    std::uint64_t totalThreads() const { return totalThreads_; }
    unsigned simdWidth() const { return kernel_.simdWidth(); }

  private:
    struct WgState
    {
        unsigned threads = 0;
        unsigned barrierArrived = 0;
        unsigned done = 0;
        std::unique_ptr<func::SlmMemory> slm;
    };

    /** Number of EU threads workgroup @p wg needs. */
    unsigned wgThreadCount(unsigned wg) const;
    /** Work items in workgroup @p wg (last group may be partial). */
    unsigned wgWorkItems(unsigned wg) const;

    const isa::Kernel &kernel_;
    obs::EventSink *sink_ = nullptr;
    std::uint64_t globalSize_;
    unsigned localSize_;
    std::vector<std::uint32_t> argWords_;
    unsigned numWgs_;
    unsigned subgroupsPerGroup_;
    std::uint64_t totalThreads_ = 0;

    unsigned nextWg_ = 0;
    unsigned wgsCompleted_ = 0;
    std::vector<WgState> wgStates_;
    std::vector<int> pendingReleases_;
};

} // namespace iwc::gpu

#endif // IWC_GPU_DISPATCHER_HH
