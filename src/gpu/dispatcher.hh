/**
 * @file
 * Thread dispatcher: splits an OpenCL-style NDRange into workgroups
 * and SIMD subgroups (EU threads), places whole workgroups onto EUs as
 * slots free up, and tracks workgroup barriers and completion.
 */

#ifndef IWC_GPU_DISPATCHER_HH
#define IWC_GPU_DISPATCHER_HH

#include <memory>
#include <vector>

#include "eu/eu_core.hh"
#include "func/memory.hh"
#include "isa/kernel.hh"

namespace iwc::obs
{
class EventSink;
}

namespace iwc::gpu
{

/** See file comment. */
class Dispatcher
{
  public:
    /** @param sink optional observability sink (WgDispatch events). */
    Dispatcher(const isa::Kernel &kernel, std::uint64_t global_size,
               unsigned local_size,
               const std::vector<std::uint32_t> &arg_words,
               obs::EventSink *sink = nullptr);

    /**
     * Places as many whole pending workgroups as the free thread
     * slots across @p eus allow. Returns true when anything was
     * placed — the target EUs' issue-scan state was reset, so the
     * event-driven simulator must republish their calendar entries.
     */
    bool tryDispatch(const std::vector<std::unique_ptr<eu::EuCore>> &eus,
                     Cycle now, Cycle dispatch_latency);

    /**
     * True while some workgroup is still waiting for placement — the
     * O(1) gate tryDispatch itself starts with, exposed so per-cycle
     * callers can skip the call entirely.
     */
    bool hasPendingWork() const { return nextWg_ < numWgs_; }

    /**
     * True when the next pending workgroup would fit right now. Free
     * slots only change when a thread retires (an issue event), so a
     * false answer stays false until some EU issues — which lets the
     * simulator skip idle cycles without missing a dispatch.
     */
    bool
    canDispatch(const std::vector<std::unique_ptr<eu::EuCore>> &eus) const;

    /** GpuHooks plumbing (called by EUs through the simulator). */
    void barrierArrive(int wg_id);
    void threadDone(int wg_id);

    /** Workgroups whose barrier released this cycle (drains the list). */
    std::vector<int> takeBarrierReleases();

    /** Cheap per-cycle guard for takeBarrierReleases. */
    bool hasPendingReleases() const { return !pendingReleases_.empty(); }

    /** True once every workgroup has fully completed. */
    bool allWorkDone() const;

    unsigned numWorkgroups() const { return numWgs_; }
    unsigned subgroupsPerGroup() const { return subgroupsPerGroup_; }
    std::uint64_t totalThreads() const { return totalThreads_; }
    unsigned simdWidth() const { return kernel_.simdWidth(); }

  private:
    struct WgState
    {
        unsigned threads = 0;
        unsigned barrierArrived = 0;
        unsigned done = 0;
        std::unique_ptr<func::SlmMemory> slm;
    };

    /** Number of EU threads workgroup @p wg needs. */
    unsigned wgThreadCount(unsigned wg) const;
    /** Work items in workgroup @p wg (last group may be partial). */
    unsigned wgWorkItems(unsigned wg) const;

    const isa::Kernel &kernel_;
    obs::EventSink *sink_ = nullptr;
    std::uint64_t globalSize_;
    unsigned localSize_;
    std::vector<std::uint32_t> argWords_;
    unsigned numWgs_;
    unsigned subgroupsPerGroup_;
    std::uint64_t totalThreads_ = 0;

    /**
     * Lazily learns the machine's total slot count so the free-slot
     * sum is total minus live instead of a walk over the EUs. Always
     * exact: a slot is free exactly when it holds no live thread, and
     * liveThreads_ mirrors dispatch (+threads) and retire (-1), the
     * same events that move the EUs' own free-slot counters.
     */
    unsigned ensureTotalSlots(
        const std::vector<std::unique_ptr<eu::EuCore>> &eus);

    unsigned nextWg_ = 0;
    /** wgThreadCount(nextWg_), cached because canDispatch() runs every
     *  visited cycle and the count costs two 64-bit divisions. */
    unsigned nextWgThreads_ = 0;
    /** Slots across all EUs; 0 until the first dispatch query. */
    unsigned totalSlots_ = 0;
    /** Dispatched, not yet retired threads (see ensureTotalSlots). */
    unsigned liveThreads_ = 0;
    unsigned wgsCompleted_ = 0;
    std::vector<WgState> wgStates_;
    std::vector<int> pendingReleases_;
};

} // namespace iwc::gpu

#endif // IWC_GPU_DISPATCHER_HH
