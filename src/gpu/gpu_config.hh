/**
 * @file
 * Whole-GPU configuration: the machine parameters of the paper's
 * Table 3 plus knobs for the sensitivity studies. A config can be
 * overridden from the command line via an OptionMap, which is how the
 * bench drivers expose DC1/DC2, perfect-L3, compaction mode, etc.
 */

#ifndef IWC_GPU_GPU_CONFIG_HH
#define IWC_GPU_GPU_CONFIG_HH

#include "common/config.hh"
#include "eu/eu_core.hh"
#include "mem/mem_system.hh"

namespace iwc::obs
{
class EventSink;
}

namespace iwc::gpu
{

/**
 * Which top-level simulation loop drives a launch. Both engines
 * produce bit-identical LaunchStats (enforced by the cycle-exactness
 * gate in tests/test_sim_engines.cc): the event engine visits exactly
 * the per-cycle loop's cycle set, it just reaches each visited cycle
 * through the next-event calendar instead of polling every EU. The
 * choice is therefore deliberately excluded from the canonical config
 * encoding and every cache key — it can never change a result, only
 * how fast the result is computed.
 */
enum class SimEngine
{
    Event,     ///< next-event calendar (the default)
    Reference, ///< retained per-cycle polling loop (the oracle)
};

/** See file comment. */
struct GpuConfig
{
    unsigned numEus = 6;
    eu::EuConfig eu;
    mem::MemConfig mem;
    Cycle dispatchLatency = 26; ///< thread-spawn to first-issue latency
    Cycle maxCycles = 1ull << 33; ///< runaway-simulation guard

    /** Simulation loop implementation (see SimEngine: not a key). */
    SimEngine engine = SimEngine::Event;

    /**
     * Observability sink wired into every EU, the dispatcher, and the
     * simulator top level (see src/obs). Null — the default — turns
     * tracing off entirely: no events are built, and the timing model
     * runs the exact pre-observability code path. The sink is not
     * owned and must outlive every launch; runs executing concurrently
     * (SweepRunner jobs) must not share one sink.
     */
    obs::EventSink *sink = nullptr;
};

/** Table 3 configuration (Ivy Bridge-like, DC1 memory subsystem). */
GpuConfig ivbConfig();

/** ivbConfig() with the compaction mode overridden. */
GpuConfig ivbConfig(compaction::Mode mode);

/**
 * Applies "key=value" overrides: mode=baseline|ivb|bcc|scc,
 * backend=auto|scalar|vector, eus=N, threads=N, dc=1|2,
 * perfect_l3=0|1, issue_width=N, arb_period=N, dram_latency=N,
 * l3_kb=N, llc_kb=N.
 */
GpuConfig applyOptions(GpuConfig config, const OptionMap &opts);

/** Parses a compaction mode name (baseline/ivb/bcc/scc). */
compaction::Mode parseMode(const std::string &name);

/** Parses a simulation engine name (event/reference). */
SimEngine parseSimEngine(const std::string &name);

/**
 * Canonical text encoding of a config: one "key=value" line per
 * field in a fixed order, covering every simulation-relevant field
 * (the observability sink pointer is excluded — it never changes a
 * result). Two configs encode identically iff they simulate
 * identically, regardless of how or in what order their fields were
 * assigned, so the encoding (and its digest) is the config half of
 * the service cache key and the form a config crosses the wire in.
 */
std::string encodeCanonical(const GpuConfig &config);

/**
 * Strict inverse of encodeCanonical: parses the canonical text back
 * into a config. Returns false (leaving @p out unspecified) on any
 * unknown key, malformed value, or unsupported version line.
 */
bool decodeCanonical(const std::string &text, GpuConfig &out);

/** Stable 64-bit digest of encodeCanonical(config). */
std::uint64_t configDigest(const GpuConfig &config);

} // namespace iwc::gpu

#endif // IWC_GPU_GPU_CONFIG_HH
