/**
 * @file
 * The public entry point of the library: an OpenCL-flavoured device
 * API. Allocate buffers, upload data, launch kernels (timing-level or
 * functional-only), download results.
 *
 * @code
 *   gpu::Device dev;                       // Table 3 machine
 *   Addr xs = dev.uploadVector(host_xs);
 *   auto stats = dev.launch(kernel, n, 64, {Arg::buffer(xs)});
 *   auto out = dev.downloadVector<float>(xs, n);
 * @endcode
 */

#ifndef IWC_GPU_DEVICE_HH
#define IWC_GPU_DEVICE_HH

#include <functional>
#include <vector>

#include "func/interp.hh"
#include "func/memory.hh"
#include "gpu/gpu_config.hh"
#include "gpu/simulator.hh"
#include "isa/kernel.hh"

namespace iwc::gpu
{

/** One kernel-argument value (32-bit payload per the ABI). */
struct Arg
{
    std::uint32_t raw = 0;

    static Arg buffer(Addr base);
    static Arg u32(std::uint32_t v) { return {v}; }
    static Arg i32(std::int32_t v)
    {
        return {static_cast<std::uint32_t>(v)};
    }
    static Arg f32(float v);
};

/** Per-instruction observer for functional runs (trace capture). */
using InstrObserver =
    std::function<void(const isa::Instruction &, LaneMask)>;

/**
 * Everything a detailed observer sees per executed instruction:
 * which workgroup/subgroup ran it, where it sits in the kernel, how
 * many times that thread has executed it (dynamic occurrence index —
 * the PC-synchronization key inter-warp compaction schemes rely on),
 * and the full step result including memory addresses.
 */
struct DetailedStep
{
    unsigned workgroup = 0;
    unsigned subgroup = 0;
    std::uint32_t ip = 0;
    std::uint64_t occurrence = 0;
    const func::StepResult *result = nullptr;
};

/** Observer for runKernelFunctionalDetailed. */
using DetailedObserver = std::function<void(const DetailedStep &)>;

/**
 * Runs a kernel functionally (no timing): workgroups execute
 * sequentially, threads round-robin between barriers. Returns the
 * dynamic instruction count. Used for trace generation and for fast
 * output validation.
 */
std::uint64_t runKernelFunctional(
    const isa::Kernel &kernel, func::GlobalMemory &gmem,
    std::uint64_t global_size, unsigned local_size,
    const std::vector<std::uint32_t> &arg_words,
    const InstrObserver &observer = nullptr,
    func::BackendKind backend = func::BackendKind::Auto);

/**
 * As runKernelFunctional, but the observer also learns the thread
 * identity, instruction position, and dynamic occurrence index of
 * every step — the information inter-warp compaction analysis needs.
 */
std::uint64_t runKernelFunctionalDetailed(
    const isa::Kernel &kernel, func::GlobalMemory &gmem,
    std::uint64_t global_size, unsigned local_size,
    const std::vector<std::uint32_t> &arg_words,
    const DetailedObserver &observer,
    func::BackendKind backend = func::BackendKind::Auto);

/** See file comment. */
class Device
{
  public:
    explicit Device(const GpuConfig &config = ivbConfig());

    // --- Buffers ---
    Addr allocBuffer(std::uint64_t bytes);
    void writeBuffer(Addr base, const void *data, std::uint64_t bytes);
    void readBuffer(Addr base, void *data, std::uint64_t bytes) const;

    template <typename T>
    Addr
    uploadVector(const std::vector<T> &host)
    {
        const Addr base = allocBuffer(host.size() * sizeof(T));
        writeBuffer(base, host.data(), host.size() * sizeof(T));
        return base;
    }

    template <typename T>
    std::vector<T>
    downloadVector(Addr base, std::size_t count) const
    {
        std::vector<T> host(count);
        readBuffer(base, host.data(), count * sizeof(T));
        return host;
    }

    // --- Execution ---

    /** Cycle-level launch on a fresh simulator instance. */
    LaunchStats launch(const isa::Kernel &kernel,
                       std::uint64_t global_size, unsigned local_size,
                       const std::vector<Arg> &args);

    /**
     * As launch(), additionally capturing the issue trace into
     * @p trace for later replay under other compaction modes.
     */
    LaunchStats launchCapture(const isa::Kernel &kernel,
                              std::uint64_t global_size,
                              unsigned local_size,
                              const std::vector<Arg> &args,
                              eu::IssueTrace &trace);

    /**
     * As launch(), but replaying @p trace instead of executing: full
     * mode-dependent timing, no functional work, global memory left
     * untouched. The launch parameters must match the capture.
     */
    LaunchStats launchReplay(const isa::Kernel &kernel,
                             std::uint64_t global_size,
                             unsigned local_size,
                             const std::vector<Arg> &args,
                             const eu::IssueTrace &trace);

    /** Functional-only launch; returns instruction count. */
    std::uint64_t launchFunctional(const isa::Kernel &kernel,
                                   std::uint64_t global_size,
                                   unsigned local_size,
                                   const std::vector<Arg> &args,
                                   const InstrObserver &observer =
                                       nullptr);

    /** As launchFunctional but with the ip-carrying observer. */
    std::uint64_t launchFunctionalDetailed(
        const isa::Kernel &kernel, std::uint64_t global_size,
        unsigned local_size, const std::vector<Arg> &args,
        const DetailedObserver &observer);

    GpuConfig &config() { return config_; }
    const GpuConfig &config() const { return config_; }
    func::GlobalMemory &memory() { return gmem_; }

  private:
    static std::vector<std::uint32_t> argWords(
        const std::vector<Arg> &args);

    GpuConfig config_;
    func::GlobalMemory gmem_;
};

} // namespace iwc::gpu

#endif // IWC_GPU_DEVICE_HH
