#include "trace/synthetic.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace iwc::trace
{

namespace
{

/**
 * Draws a divergent execution mask of @p width lanes with roughly
 * @p mean_active enabled fraction. Clustered masks enable a single
 * contiguous block (aligned blocks compress under BCC/IvbOpt);
 * scattered masks enable random lane positions (only SCC helps).
 */
LaneMask
drawMask(Rng &rng, unsigned width, double mean_active, double clustering)
{
    // Active count: mean +/- uniform jitter, at least one lane.
    const double jitter = (rng.nextDouble() - 0.5) * 0.5;
    double frac = mean_active + jitter;
    frac = std::clamp(frac, 0.05, 1.0);
    unsigned active =
        std::max(1u, static_cast<unsigned>(frac * width + 0.5));
    active = std::min(active, width);

    if (rng.chance(clustering)) {
        // Contiguous block at a random (often quad-aligned) start.
        const unsigned start = rng.chance(0.5)
            ? static_cast<unsigned>(rng.below(width / 4 + 1)) * 4 % width
            : static_cast<unsigned>(rng.below(width));
        LaneMask mask = 0;
        for (unsigned i = 0; i < active; ++i)
            mask |= LaneMask{1} << ((start + i) % width);
        return mask;
    }

    // Scattered: choose 'active' distinct random lanes.
    LaneMask mask = 0;
    unsigned placed = 0;
    while (placed < active) {
        const unsigned lane = static_cast<unsigned>(rng.below(width));
        if (!(mask & (LaneMask{1} << lane))) {
            mask |= LaneMask{1} << lane;
            ++placed;
        }
    }
    return mask;
}

InstrKind
drawKind(Rng &rng, const SyntheticProfile &p)
{
    const double x = rng.nextDouble();
    if (x < p.sendFraction)
        return InstrKind::Send;
    if (x < p.sendFraction + p.ctrlFraction)
        return InstrKind::Ctrl;
    if (x < p.sendFraction + p.ctrlFraction + p.emFraction)
        return InstrKind::Em;
    return InstrKind::Alu;
}

} // namespace

void
synthesizeTo(const SyntheticProfile &p,
             const std::function<void(const TraceRecord &)> &emit)
{
    fatal_if(p.simdWidth != 8 && p.simdWidth != 16,
             "profile %s: SIMD width must be 8 or 16", p.name.c_str());

    Rng rng(p.seed * 0x2545f4914f6cdd1dull + 17);

    bool in_divergent = false;
    LaneMask current_mask = laneMaskForWidth(p.simdWidth);
    unsigned current_width = p.simdWidth;
    unsigned remaining_run = 0;

    for (std::uint64_t i = 0; i < p.instructions; ++i) {
        if (remaining_run == 0) {
            // Start a new control-flow region.
            in_divergent = rng.chance(p.divergentFraction);
            current_width = (p.simdWidth == 16 &&
                             rng.chance(p.simd8Fraction))
                ? 8 : p.simdWidth;
            current_mask = in_divergent
                ? drawMask(rng, current_width, p.meanActive, p.clustering)
                : laneMaskForWidth(current_width);
            // Region length: 1..2*runLength (mean ~ runLength).
            remaining_run = 1 +
                static_cast<unsigned>(rng.below(2 * p.runLength));
        }
        --remaining_run;

        TraceRecord r;
        r.simdWidth = static_cast<std::uint8_t>(current_width);
        r.elemBytes = 4;
        r.kind = drawKind(rng, p);
        r.execMask = current_mask;
        emit(r);
    }
}

MaskTrace
synthesize(const SyntheticProfile &p)
{
    MaskTrace trace;
    trace.name = p.name;
    trace.records.reserve(p.instructions);
    synthesizeTo(p, [&trace](const TraceRecord &r) {
        trace.records.push_back(r);
    });
    return trace;
}

const std::vector<SyntheticProfile> &
paperTraceProfiles()
{
    // clang-format off
    static const std::vector<SyntheticProfile> profiles = {
        // --- Divergent OpenCL traces (Fig. 10: 25-42% gains) ---
        // LuxMark kernels are SIMD8 (register pressure, Section 5.3).
        {"luxmark_sky",  "OpenCL", 8, 0, 0.80, 0.33, 0.45, 6,
         0.10, 0.05, 0.10, 200000, 101},
        {"luxmark_sala", "OpenCL", 8, 0, 0.75, 0.36, 0.40, 6,
         0.10, 0.05, 0.10, 200000, 102},
        {"luxmark_hdr",  "OpenCL", 8, 0, 0.72, 0.38, 0.45, 7,
         0.10, 0.05, 0.10, 200000, 103},
        {"luxmark_ocl",  "OpenCL", 8, 0, 0.70, 0.40, 0.45, 7,
         0.10, 0.05, 0.10, 200000, 104},
        {"bulletphysics", "OpenCL", 16, 0.15, 0.78, 0.30, 0.55, 8,
         0.06, 0.06, 0.12, 200000, 105},
        {"rightware_mandelbulb", "OpenCL", 16, 0.0, 0.85, 0.35, 0.60, 10,
         0.12, 0.03, 0.10, 200000, 106},
        {"tree_search",  "OpenCL", 16, 0.0, 0.80, 0.35, 0.15, 5,
         0.02, 0.10, 0.15, 200000, 107},
        {"cp",           "OpenCL", 16, 0.0, 0.55, 0.45, 0.50, 9,
         0.08, 0.06, 0.10, 200000, 108},
        {"oclprofv1p0",  "OpenCL", 16, 0.1, 0.50, 0.50, 0.45, 8,
         0.06, 0.08, 0.10, 200000, 109},
        {"OptSAA",       "OpenCL", 16, 0.0, 0.60, 0.42, 0.35, 7,
         0.08, 0.06, 0.12, 200000, 110},
        {"sandra_ocl",   "OpenCL", 16, 0.0, 0.55, 0.45, 0.40, 8,
         0.08, 0.08, 0.10, 200000, 111},
        {"ati_eigenval", "OpenCL", 16, 0.0, 0.65, 0.40, 0.30, 6,
         0.04, 0.10, 0.14, 200000, 112},
        {"ati_floydwarshall", "OpenCL", 16, 0.0, 0.45, 0.55, 0.50, 10,
         0.02, 0.12, 0.10, 200000, 113},
        // --- OpenGL (3D graphics) traces: 15-22%, mostly SCC ---
        {"glbench_egypt", "OpenGL", 16, 0.2, 0.50, 0.55, 0.20, 12,
         0.10, 0.08, 0.08, 200000, 114},
        {"glbench_pro",  "OpenGL", 16, 0.2, 0.55, 0.52, 0.18, 12,
         0.10, 0.08, 0.08, 200000, 115},
        // --- Face detection: ~30% benefit, larger share from SCC ---
        {"FD_IntelFinalists", "OpenCL", 16, 0.0, 0.75, 0.35, 0.25, 6,
         0.05, 0.08, 0.12, 200000, 116},
        {"FD_politicians",    "OpenCL", 16, 0.0, 0.78, 0.33, 0.25, 6,
         0.05, 0.08, 0.12, 200000, 117},
        // --- Coherent commercial traces (for the Fig. 3 spread) ---
        {"sandra_crypto", "OpenCL", 16, 0.0, 0.04, 0.85, 0.60, 16,
         0.05, 0.10, 0.05, 200000, 118},
        {"rightware_basemark", "OpenGL", 16, 0.1, 0.06, 0.80, 0.50, 14,
         0.10, 0.08, 0.06, 200000, 119},
        {"glbench_fill", "OpenGL", 16, 0.0, 0.03, 0.90, 0.50, 20,
         0.08, 0.10, 0.04, 200000, 120},
        // --- Additional traces rounding out the Fig. 3 population ---
        {"physics_cloth", "OpenCL", 16, 0.1, 0.65, 0.40, 0.40, 7,
         0.08, 0.08, 0.12, 200000, 121},
        {"video_enc_me", "OpenCL", 16, 0.0, 0.40, 0.55, 0.65, 10,
         0.04, 0.10, 0.10, 200000, 122},
        {"speech_viterbi", "OpenCL", 16, 0.0, 0.58, 0.45, 0.30, 6,
         0.03, 0.10, 0.14, 200000, 123},
        {"glbench_trex", "OpenGL", 16, 0.2, 0.45, 0.58, 0.22, 11,
         0.10, 0.08, 0.08, 200000, 124},
        {"gl_shadowmap", "OpenGL", 16, 0.1, 0.35, 0.60, 0.30, 9,
         0.08, 0.10, 0.08, 200000, 125},
        {"compute_nbody", "OpenCL", 16, 0.0, 0.05, 0.85, 0.50, 18,
         0.12, 0.06, 0.05, 200000, 126},
        {"media_scaler", "OpenCL", 16, 0.0, 0.04, 0.90, 0.60, 16,
         0.06, 0.12, 0.05, 200000, 127},
    };
    // clang-format on
    return profiles;
}

const SyntheticProfile &
profileByName(const std::string &name)
{
    for (const SyntheticProfile &p : paperTraceProfiles())
        if (p.name == name)
            return p;
    fatal("unknown synthetic trace profile '%s'", name.c_str());
}

} // namespace iwc::trace
