/**
 * @file
 * Trace-based compaction analysis: replays a mask trace through the
 * same cycle-planning code the timing EU uses and reports SIMD
 * efficiency, the Figure 9 utilization breakdown, and per-mode EU
 * cycles. By construction a kernel's EU-cycle numbers are identical
 * whether measured execution-driven or trace-based (tested).
 */

#ifndef IWC_TRACE_ANALYZER_HH
#define IWC_TRACE_ANALYZER_HH

#include <array>

#include "compaction/cycle_plan.hh"
#include "compaction/plan_cache.hh"
#include "trace/trace.hh"

namespace iwc::trace
{

/** Fixed per-instruction EU costs for non-compressible kinds; must
 *  match eu::EuConfig defaults for cross-methodology consistency. */
struct AnalyzerCosts
{
    unsigned sendCycles = 2;
    unsigned ctrlCycles = 1;
};

/** Aggregate analysis of one trace. */
struct TraceAnalysis
{
    std::uint64_t records = 0;
    std::uint64_t sumActiveLanes = 0;
    std::uint64_t sumSimdWidth = 0;
    std::array<std::uint64_t, compaction::kNumModes> euCycles{};
    std::array<std::uint64_t, compaction::kNumUtilBins> utilBins{};
    std::uint64_t aluRecords = 0;
    std::uint64_t sccSwizzledLanes = 0;

    double
    simdEfficiency() const
    {
        return sumSimdWidth
            ? static_cast<double>(sumActiveLanes) / sumSimdWidth
            : 1.0;
    }

    /** The paper's coherent/divergent classification (95% threshold). */
    bool isDivergent(double threshold = 0.95) const
    {
        return simdEfficiency() < threshold;
    }

    /**
     * Folds another analysis in. Every field is an integer sum of
     * independent per-record contributions, so merging is associative
     * and commutative: analyzing shards of a trace separately and
     * merging gives results bit-identical to one sequential pass —
     * the property the sharded streaming analyzer
     * (tracestream::analyzeTraceStream) is built on and that
     * tests/test_tracestream.cc proves across the workload corpus.
     */
    void
    merge(const TraceAnalysis &other)
    {
        records += other.records;
        sumActiveLanes += other.sumActiveLanes;
        sumSimdWidth += other.sumSimdWidth;
        for (unsigned m = 0; m < compaction::kNumModes; ++m)
            euCycles[m] += other.euCycles[m];
        for (unsigned b = 0; b < compaction::kNumUtilBins; ++b)
            utilBins[b] += other.utilBins[b];
        aluRecords += other.aluRecords;
        sccSwizzledLanes += other.sccSwizzledLanes;
    }

    std::uint64_t
    cycles(compaction::Mode m) const
    {
        return euCycles[static_cast<unsigned>(m)];
    }

    /** Fractional EU-cycle reduction of @p mode vs @p base. */
    double
    reduction(compaction::Mode mode,
              compaction::Mode base = compaction::Mode::IvbOpt) const
    {
        const double b = static_cast<double>(cycles(base));
        return b == 0 ? 0.0 : 1.0 - cycles(mode) / b;
    }

    /** Fraction of SIMD8/16 ALU instructions in a Figure 9 bin. */
    double
    utilFraction(compaction::UtilBin bin) const
    {
        std::uint64_t binned = 0;
        for (unsigned b = 0; b < compaction::kNumUtilBins; ++b)
            binned += utilBins[b];
        return binned
            ? static_cast<double>(
                  utilBins[static_cast<unsigned>(bin)]) / binned
            : 0.0;
    }
};

/** Analyzes a whole trace. */
TraceAnalysis analyzeTrace(const MaskTrace &trace,
                           const AnalyzerCosts &costs = {});

/** Streaming version for traces too large to materialize. */
class TraceAnalyzer
{
  public:
    explicit TraceAnalyzer(const AnalyzerCosts &costs = {})
        : costs_(costs)
    {
    }

    void add(const TraceRecord &record);
    const TraceAnalysis &result() const { return analysis_; }
    const compaction::PlanCache &planCache() const { return planCache_; }

  private:
    AnalyzerCosts costs_;
    TraceAnalysis analysis_;
    compaction::PlanCache planCache_;
};

} // namespace iwc::trace

#endif // IWC_TRACE_ANALYZER_HH
