#include "trace/trace.hh"

namespace iwc::trace
{

const char *
instrKindName(InstrKind kind)
{
    switch (kind) {
      case InstrKind::Alu:  return "alu";
      case InstrKind::Em:   return "em";
      case InstrKind::Send: return "send";
      case InstrKind::Ctrl: return "ctrl";
    }
    return "?";
}

InstrKind
kindOf(const isa::Instruction &in)
{
    if (in.op == isa::Opcode::Send)
        return InstrKind::Send;
    if (isa::isControlFlow(in.op))
        return InstrKind::Ctrl;
    if (isa::isExtendedMath(in.op))
        return InstrKind::Em;
    return InstrKind::Alu;
}

TraceRecord
recordOf(const isa::Instruction &in, LaneMask exec_mask)
{
    TraceRecord r;
    r.simdWidth = in.simdWidth;
    r.elemBytes = static_cast<std::uint8_t>(isa::execElemBytes(in));
    r.kind = kindOf(in);
    r.execMask = exec_mask & in.widthMask();
    return r;
}

gpu::InstrObserver
captureObserver(MaskTrace &out)
{
    out.reserve(1u << 16); // skip the early reallocation storm
    return [&out](const isa::Instruction &in, LaneMask exec_mask) {
        out.append(recordOf(in, exec_mask));
    };
}

} // namespace iwc::trace
