/**
 * @file
 * Synthetic mask-trace generators standing in for the paper's
 * proprietary trace-based workloads (LuxMark, Sandra, RightWare,
 * BulletPhysics, GLBench, Face-Detection, ...) which we cannot run.
 *
 * Substitution rationale (see DESIGN.md): the paper's trace-based
 * methodology consumes only the per-instruction execution-mask stream.
 * Each named profile below synthesizes a stream whose SIMD-width mix,
 * active-lane distribution, and lane clustering are tuned to the
 * per-workload utilization breakdown and BCC/SCC split reported in
 * Figures 9 and 10, so the analyzer exercises exactly the same code
 * path the real traces would.
 *
 * Knobs:
 *  - divergentFraction: share of instructions inside divergent regions
 *  - meanActive: mean enabled-lane fraction within divergent regions
 *  - clustering: probability a divergent mask is a contiguous block
 *    (BCC-friendly) rather than a lane-scattered pattern (needs SCC)
 *  - runLength: how many instructions a mask persists (control-flow
 *    region length)
 */

#ifndef IWC_TRACE_SYNTHETIC_HH
#define IWC_TRACE_SYNTHETIC_HH

#include <functional>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace iwc::trace
{

/** Generation parameters for one synthetic workload. */
struct SyntheticProfile
{
    std::string name;
    std::string category;      ///< "OpenCL" or "OpenGL"
    unsigned simdWidth = 16;   ///< 8 or 16 (the paper's SIMD8 kernels)
    double simd8Fraction = 0;  ///< share of SIMD8 instrs in a 16 kernel
    double divergentFraction = 0.5;
    double meanActive = 0.5;
    double clustering = 0.5;
    unsigned runLength = 8;
    double emFraction = 0.08;  ///< extended-math share of ALU work
    double sendFraction = 0.06;
    double ctrlFraction = 0.10;
    std::uint64_t instructions = 200000;
    std::uint64_t seed = 1;
};

/** Generates the trace for one profile (deterministic per seed). */
MaskTrace synthesize(const SyntheticProfile &profile);

/**
 * Streaming form: emits each record through @p emit instead of
 * materializing a MaskTrace, so a billion-record profile can feed a
 * tracestream::ChunkedTraceWriter with bounded memory. Identical
 * record stream to synthesize() for the same profile and seed.
 */
void synthesizeTo(const SyntheticProfile &profile,
                  const std::function<void(const TraceRecord &)> &emit);

/**
 * The named trace workloads of the paper's evaluation, with profiles
 * tuned to land in the benefit ranges of Figure 10 (LuxMark /
 * BulletPhysics / RightWare 25-42%, GLBench 15-22% mostly SCC,
 * Face-Detection ~30% mostly SCC, plus coherent commercial traces).
 */
const std::vector<SyntheticProfile> &paperTraceProfiles();

/** Looks a profile up by name (fatal if unknown). */
const SyntheticProfile &profileByName(const std::string &name);

} // namespace iwc::trace

#endif // IWC_TRACE_SYNTHETIC_HH
