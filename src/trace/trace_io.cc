#include "trace/trace_io.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace iwc::trace
{

namespace
{

constexpr char kMagic[4] = {'I', 'W', 'C', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    fatal_if(!is, "truncated trace stream");
    return v;
}

InstrKind
kindFromByte(std::uint8_t b)
{
    fatal_if(b > static_cast<std::uint8_t>(InstrKind::Ctrl),
             "bad instruction kind %u in trace", b);
    return static_cast<InstrKind>(b);
}

/** Longest workload name either reader accepts; anything bigger is a
 *  corrupt or hostile length field, not a real trace. */
constexpr std::uint32_t kMaxNameLen = 4096;

} // namespace

void
validateTraceRecord(const TraceRecord &r, std::uint64_t index)
{
    // The ISA only issues power-of-two widths (1, 4, 8, 16, 32), so
    // anything else is corruption even though laneMaskForWidth would
    // accept it.
    fatal_if(r.simdWidth == 0 || r.simdWidth > kMaxSimdWidth ||
                 (r.simdWidth & (r.simdWidth - 1)) != 0,
             "trace record %llu: bad SIMD width %u (expected a power "
             "of two <= %u)",
             static_cast<unsigned long long>(index), r.simdWidth,
             kMaxSimdWidth);
    // isa::dataTypeSize spans 2-byte words to 8-byte quadwords, and
    // the downstream cycle planners size their tables from exactly
    // that range (kMaxGroupWidth = datapath bytes / minimum element).
    // An element size outside it would walk off those tables, so
    // reject it here.
    constexpr unsigned kMinElemBytes = 2;
    constexpr unsigned kMaxElemBytes = 8;
    fatal_if(r.elemBytes < kMinElemBytes || r.elemBytes > kMaxElemBytes ||
                 (r.elemBytes & (r.elemBytes - 1)) != 0,
             "trace record %llu: bad element size %u bytes "
             "(expected a power of two in %u..%u)",
             static_cast<unsigned long long>(index), r.elemBytes,
             kMinElemBytes, kMaxElemBytes);
    fatal_if((r.execMask & ~laneMaskForWidth(r.simdWidth)) != 0,
             "trace record %llu: mask %08x has bits beyond SIMD "
             "width %u",
             static_cast<unsigned long long>(index), r.execMask,
             r.simdWidth);
}

void
writeBinary(std::ostream &os, const MaskTrace &trace)
{
    os.write(kMagic, sizeof(kMagic));
    writePod(os, kVersion);
    const auto name_len = static_cast<std::uint32_t>(trace.name.size());
    writePod(os, name_len);
    os.write(trace.name.data(), name_len);
    writePod(os, static_cast<std::uint64_t>(trace.records.size()));
    for (const TraceRecord &r : trace.records) {
        writePod(os, r.simdWidth);
        writePod(os, r.elemBytes);
        writePod(os, static_cast<std::uint8_t>(r.kind));
        writePod(os, r.execMask);
    }
}

MaskTrace
readBinary(std::istream &is)
{
    char magic[4];
    is.read(magic, sizeof(magic));
    fatal_if(!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0,
             "not an IWC trace stream");
    const auto version = readPod<std::uint32_t>(is);
    fatal_if(version != kVersion, "unsupported trace version %u",
             version);

    MaskTrace trace;
    const auto name_len = readPod<std::uint32_t>(is);
    fatal_if(name_len > kMaxNameLen,
             "trace name length %u exceeds the %u-byte cap "
             "(corrupt header?)",
             name_len, kMaxNameLen);
    trace.name.resize(name_len);
    is.read(trace.name.data(), name_len);
    fatal_if(!is, "truncated trace stream");

    const auto count = readPod<std::uint64_t>(is);
    // A lying record count cannot force a huge up-front allocation:
    // cap the reservation and let the per-record reads hit the
    // truncation check.
    trace.records.reserve(
        static_cast<std::size_t>(std::min<std::uint64_t>(count, 1u << 20)));
    for (std::uint64_t i = 0; i < count; ++i) {
        TraceRecord r;
        r.simdWidth = readPod<std::uint8_t>(is);
        r.elemBytes = readPod<std::uint8_t>(is);
        r.kind = kindFromByte(readPod<std::uint8_t>(is));
        r.execMask = readPod<LaneMask>(is);
        validateTraceRecord(r, i);
        trace.records.push_back(r);
    }
    return trace;
}

void
writeBinaryFile(const std::string &path, const MaskTrace &trace)
{
    std::ofstream os(path, std::ios::binary);
    fatal_if(!os, "cannot open %s for writing", path.c_str());
    writeBinary(os, trace);
}

MaskTrace
readBinaryFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    fatal_if(!is, "cannot open %s", path.c_str());
    return readBinary(is);
}

void
writeText(std::ostream &os, const MaskTrace &trace)
{
    os << "# iwc-trace " << trace.name << '\n';
    for (const TraceRecord &r : trace.records) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%u %u %s %08x",
                      r.simdWidth, r.elemBytes, instrKindName(r.kind),
                      r.execMask);
        os << buf << '\n';
    }
}

MaskTrace
readText(std::istream &is)
{
    MaskTrace trace;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::istringstream header(line.substr(1));
            std::string tag;
            header >> tag >> trace.name;
            continue;
        }
        std::istringstream ls(line);
        unsigned width = 0, bytes = 0;
        std::string kind;
        std::string hex;
        ls >> width >> bytes >> kind >> hex;
        fatal_if(!ls, "bad trace line: %s", line.c_str());
        fatal_if(width > 0xff || bytes > 0xff,
                 "bad trace line (field out of range): %s",
                 line.c_str());
        TraceRecord r;
        r.simdWidth = static_cast<std::uint8_t>(width);
        r.elemBytes = static_cast<std::uint8_t>(bytes);
        if (kind == "alu")
            r.kind = InstrKind::Alu;
        else if (kind == "em")
            r.kind = InstrKind::Em;
        else if (kind == "send")
            r.kind = InstrKind::Send;
        else if (kind == "ctrl")
            r.kind = InstrKind::Ctrl;
        else
            fatal("bad instruction kind '%s'", kind.c_str());
        char *end = nullptr;
        const unsigned long mask = std::strtoul(hex.c_str(), &end, 16);
        fatal_if(end == hex.c_str() || *end != '\0' ||
                     mask > ~LaneMask{0},
                 "bad execution mask '%s' in trace line: %s",
                 hex.c_str(), line.c_str());
        r.execMask = static_cast<LaneMask>(mask);
        validateTraceRecord(r, trace.records.size());
        trace.records.push_back(r);
    }
    return trace;
}

} // namespace iwc::trace
