#include "trace/analyzer.hh"

#include "common/bitutil.hh"

namespace iwc::trace
{

void
TraceAnalyzer::add(const TraceRecord &record)
{
    TraceAnalysis &a = analysis_;
    ++a.records;
    a.sumActiveLanes +=
        popCount(record.execMask & laneMaskForWidth(record.simdWidth));
    a.sumSimdWidth += record.simdWidth;

    if (record.kind == InstrKind::Send) {
        for (auto &cycles : a.euCycles)
            cycles += costs_.sendCycles;
        return;
    }
    if (record.kind == InstrKind::Ctrl) {
        for (auto &cycles : a.euCycles)
            cycles += costs_.ctrlCycles;
        return;
    }

    const compaction::ExecShape shape{record.simdWidth, record.elemBytes,
                                      record.execMask};
    const compaction::PlanCosts &plan_costs = planCache_.costs(shape);
    for (unsigned m = 0; m < compaction::kNumModes; ++m)
        a.euCycles[m] += plan_costs.cycles[m];
    a.sccSwizzledLanes += plan_costs.sccSwizzledLanes;

    ++a.aluRecords;
    const auto bin =
        compaction::classifyUtil(record.simdWidth, record.execMask);
    ++a.utilBins[static_cast<unsigned>(bin)];
}

TraceAnalysis
analyzeTrace(const MaskTrace &trace, const AnalyzerCosts &costs)
{
    TraceAnalyzer analyzer(costs);
    for (const TraceRecord &record : trace.records)
        analyzer.add(record);
    return analyzer.result();
}

} // namespace iwc::trace
