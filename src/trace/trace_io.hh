/**
 * @file
 * Trace serialization: a compact binary format for bulk traces and a
 * human-readable text format for debugging and small fixtures.
 */

#ifndef IWC_TRACE_TRACE_IO_HH
#define IWC_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/trace.hh"

namespace iwc::trace
{

/** Binary format: magic, version, name, record count, raw records. */
void writeBinary(std::ostream &os, const MaskTrace &trace);
MaskTrace readBinary(std::istream &is);

void writeBinaryFile(const std::string &path, const MaskTrace &trace);
MaskTrace readBinaryFile(const std::string &path);

/** Text format: "width elemBytes kind hexmask" per line. */
void writeText(std::ostream &os, const MaskTrace &trace);
MaskTrace readText(std::istream &is);

} // namespace iwc::trace

#endif // IWC_TRACE_TRACE_IO_HH
