/**
 * @file
 * Trace serialization: a compact binary format for bulk traces and a
 * human-readable text format for debugging and small fixtures.
 */

#ifndef IWC_TRACE_TRACE_IO_HH
#define IWC_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/trace.hh"

namespace iwc::trace
{

/**
 * Dies unless @p r is a record some simulator component could have
 * produced: SIMD width a power of two in [1, kMaxSimdWidth], element
 * size a power of two within the datapath, and no execution-mask bits
 * beyond the SIMD width. Shared by every trace reader (binary, text,
 * and the tracestream container) so corrupt input fails here with a
 * message instead of deep inside the cycle planner. @p index names
 * the offending record in the message.
 */
void validateTraceRecord(const TraceRecord &r, std::uint64_t index);

/** Binary format: magic, version, name, record count, raw records. */
void writeBinary(std::ostream &os, const MaskTrace &trace);
MaskTrace readBinary(std::istream &is);

void writeBinaryFile(const std::string &path, const MaskTrace &trace);
MaskTrace readBinaryFile(const std::string &path);

/** Text format: "width elemBytes kind hexmask" per line. */
void writeText(std::ostream &os, const MaskTrace &trace);
MaskTrace readText(std::istream &is);

} // namespace iwc::trace

#endif // IWC_TRACE_TRACE_IO_HH
