/**
 * @file
 * Execution-mask traces: the paper's second evaluation methodology
 * ("we have instrumented the functional model to obtain SIMD execution
 * mask for every executed instruction"). A trace records, per dynamic
 * instruction, exactly what the compaction logic needs — SIMD width,
 * execution mask, element size, and instruction kind — and nothing
 * else, so hundreds of millions of records stay cheap.
 */

#ifndef IWC_TRACE_TRACE_HH
#define IWC_TRACE_TRACE_HH

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "gpu/device.hh"
#include "isa/isa.hh"

namespace iwc::trace
{

/** Coarse instruction class; fixed-cost kinds dilute BCC/SCC benefit. */
enum class InstrKind : std::uint8_t
{
    Alu,  ///< FPU-pipe ALU op (compressible)
    Em,   ///< extended-math op (compressible)
    Send, ///< memory/sync message (fixed cost)
    Ctrl, ///< control flow (fixed cost)
};

const char *instrKindName(InstrKind kind);

/** One dynamic instruction. */
struct TraceRecord
{
    std::uint8_t simdWidth = 16;
    std::uint8_t elemBytes = 4;
    InstrKind kind = InstrKind::Alu;
    LaneMask execMask = 0;
};

/** A named sequence of trace records. */
struct MaskTrace
{
    std::string name;
    std::vector<TraceRecord> records;

    std::uint64_t size() const { return records.size(); }
    void
    append(const TraceRecord &r)
    {
        // Captured records always honor the LaneMask invariant
        // (recordOf clips to the width mask); a violation here means
        // a caller built a record by hand and got it wrong.
        assert((r.execMask & ~laneMaskForWidth(r.simdWidth)) == 0);
        // Explicit capacity doubling with a capture-sized floor:
        // std::vector's growth is amortized-constant anyway, but the
        // floor spares unreserved captures the early reallocation
        // storm and keeps growth policy independent of the library.
        if (records.size() == records.capacity())
            records.reserve(
                std::max<std::size_t>(records.capacity() * 2, 1u << 12));
        records.push_back(r);
    }
    /** Pre-sizes the record buffer (captures run to millions). */
    void reserve(std::uint64_t n) { records.reserve(n); }
};

/** Classifies an instruction for trace purposes. */
InstrKind kindOf(const isa::Instruction &in);

/** Builds a TraceRecord from an executed instruction. */
TraceRecord recordOf(const isa::Instruction &in, LaneMask exec_mask);

/**
 * Returns an observer (for Device::launchFunctional) that appends a
 * record per executed instruction to @p out.
 */
gpu::InstrObserver captureObserver(MaskTrace &out);

} // namespace iwc::trace

#endif // IWC_TRACE_TRACE_HH
