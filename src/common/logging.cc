#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace iwc
{

namespace
{

/**
 * Serializes sink writes so messages from SweepRunner worker threads
 * never interleave mid-line. panic()/fatal() also take the lock: the
 * process is going down anyway, and holding it while aborting keeps
 * the final message intact. The mutex is never taken recursively.
 */
std::mutex &
sinkMutex()
{
    static std::mutex mutex;
    return mutex;
}

void
vreport(const char *prefix, const char *fmt, va_list ap)
{
    const std::lock_guard<std::mutex> lock(sinkMutex());
    std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    {
        const std::lock_guard<std::mutex> lock(sinkMutex());
        std::fprintf(stderr, "panic: %s:%d: ", file, line);
        va_list ap;
        va_start(ap, fmt);
        std::vfprintf(stderr, fmt, ap);
        va_end(ap);
        std::fprintf(stderr, "\n");
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    {
        const std::lock_guard<std::mutex> lock(sinkMutex());
        std::fprintf(stderr, "fatal: %s:%d: ", file, line);
        va_list ap;
        va_start(ap, fmt);
        std::vfprintf(stderr, fmt, ap);
        va_end(ap);
        std::fprintf(stderr, "\n");
    }
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
informImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

} // namespace iwc
