/**
 * @file
 * Minimal gem5-style logging: panic() for simulator bugs, fatal() for
 * user errors, warn()/inform() for status messages.
 */

#ifndef IWC_COMMON_LOGGING_HH
#define IWC_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace iwc
{

/**
 * Terminates the process for an internal simulator bug (calls abort()).
 * Use when a condition that should be impossible is observed.
 */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/**
 * Terminates the process for a user-level error such as an invalid
 * configuration (calls exit(1)).
 */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Prints a warning to stderr; simulation continues. */
void warnImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Prints an informational message to stderr; simulation continues. */
void informImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace iwc

#define panic(...) ::iwc::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::iwc::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::iwc::warnImpl(__VA_ARGS__)
#define inform(...) ::iwc::informImpl(__VA_ARGS__)

/** panic() unless @p cond holds. */
#define panic_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            panic(__VA_ARGS__);                                              \
    } while (0)

/** fatal() unless @p cond holds. */
#define fatal_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            fatal(__VA_ARGS__);                                              \
    } while (0)

#endif // IWC_COMMON_LOGGING_HH
