/**
 * @file
 * Deterministic pseudo-random number generation for workload input data
 * and synthetic trace synthesis. A fixed, seedable generator keeps every
 * experiment reproducible bit-for-bit across runs and hosts.
 */

#ifndef IWC_COMMON_RNG_HH
#define IWC_COMMON_RNG_HH

#include <cstdint>

namespace iwc
{

/**
 * xoshiro256** generator. Small, fast, and good enough statistical
 * quality for workload data; not for cryptographic use.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform float in [0, 1). */
    float
    nextFloat()
    {
        return static_cast<float>(next() >> 40) * (1.0f / (1 << 24));
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * (1.0 / (1ull << 53));
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return nextDouble() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace iwc

#endif // IWC_COMMON_RNG_HH
