/**
 * @file
 * Tiny "key=value" option parser used by the bench drivers and examples
 * so experiments can be re-run with different machine parameters from
 * the command line without recompiling.
 */

#ifndef IWC_COMMON_CONFIG_HH
#define IWC_COMMON_CONFIG_HH

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

namespace iwc
{

/**
 * Parses "key=value" strings from argv and serves typed lookups with
 * defaults. Unknown keys are kept and can be enumerated (useful for
 * flagging typos in experiment scripts).
 */
class OptionMap
{
  public:
    OptionMap() = default;

    /** Parses every "key=value" argument; other arguments are ignored. */
    OptionMap(int argc, char **argv);

    /** Inserts or overwrites one option. */
    void set(const std::string &key, const std::string &value);

    bool has(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &def) const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    const std::map<std::string, std::string> &raw() const { return opts_; }

    /**
     * Keys present in the map but absent from @p valid, in sorted
     * order. Tools that know their full key set call this to reject
     * typos ("sclae=2") instead of silently running with defaults.
     */
    std::vector<std::string>
    unknownKeys(std::initializer_list<const char *> valid) const;

  private:
    std::map<std::string, std::string> opts_;
};

} // namespace iwc

#endif // IWC_COMMON_CONFIG_HH
