/**
 * @file
 * Fundamental scalar types shared by every module of the IWC simulator.
 */

#ifndef IWC_COMMON_TYPES_HH
#define IWC_COMMON_TYPES_HH

#include <cstdint>

namespace iwc
{

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Simulated byte address in the flat global address space. */
using Addr = std::uint64_t;

/**
 * Per-channel execution mask. Bit i corresponds to SIMD channel i.
 * Supports instruction SIMD widths up to 32.
 */
using LaneMask = std::uint32_t;

/** Sentinel for "no cycle scheduled yet". */
constexpr Cycle kNoCycle = ~Cycle{0};

/** Cache line size used throughout the memory hierarchy (bytes). */
constexpr unsigned kCacheLineBytes = 64;

/** Width of one GRF register in bytes (256 bits). */
constexpr unsigned kGrfRegBytes = 32;

/** Number of GRF registers per EU thread. */
constexpr unsigned kGrfRegCount = 128;

/** Width of the hardware execution datapath in bytes per cycle. */
constexpr unsigned kAluDatapathBytes = 16;

/** Maximum SIMD width of a single instruction. */
constexpr unsigned kMaxSimdWidth = 32;

/** Returns a LaneMask with the low @p n bits set. */
constexpr LaneMask
laneMaskForWidth(unsigned n)
{
    return n >= 32 ? ~LaneMask{0} : ((LaneMask{1} << n) - 1);
}

} // namespace iwc

#endif // IWC_COMMON_TYPES_HH
