#include "common/config.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace iwc
{

OptionMap::OptionMap(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg(argv[i]);
        const auto eq = arg.find('=');
        if (eq == std::string::npos || eq == 0)
            continue;
        opts_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
}

void
OptionMap::set(const std::string &key, const std::string &value)
{
    opts_[key] = value;
}

bool
OptionMap::has(const std::string &key) const
{
    return opts_.count(key) != 0;
}

std::string
OptionMap::getString(const std::string &key, const std::string &def) const
{
    const auto it = opts_.find(key);
    return it == opts_.end() ? def : it->second;
}

std::int64_t
OptionMap::getInt(const std::string &key, std::int64_t def) const
{
    const auto it = opts_.find(key);
    if (it == opts_.end())
        return def;
    char *end = nullptr;
    const std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    fatal_if(end == it->second.c_str() || *end != '\0',
             "option %s=%s is not an integer", key.c_str(),
             it->second.c_str());
    return v;
}

double
OptionMap::getDouble(const std::string &key, double def) const
{
    const auto it = opts_.find(key);
    if (it == opts_.end())
        return def;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    fatal_if(end == it->second.c_str() || *end != '\0',
             "option %s=%s is not a number", key.c_str(),
             it->second.c_str());
    return v;
}

std::vector<std::string>
OptionMap::unknownKeys(std::initializer_list<const char *> valid) const
{
    std::vector<std::string> unknown;
    for (const auto &[key, value] : opts_) {
        bool known = false;
        for (const char *v : valid)
            known = known || key == v;
        if (!known)
            unknown.push_back(key);
    }
    return unknown;
}

bool
OptionMap::getBool(const std::string &key, bool def) const
{
    const auto it = opts_.find(key);
    if (it == opts_.end())
        return def;
    const std::string &v = it->second;
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    fatal("option %s=%s is not a boolean", key.c_str(), v.c_str());
}

} // namespace iwc
