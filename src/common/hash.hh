/**
 * @file
 * Stable 64-bit FNV-1a hashing for cache keys and wire digests. The
 * byte stream fed to the hash is defined field-by-field by each
 * caller (never raw struct memory), so digests are independent of
 * padding, endianness of the host is normalized to little-endian
 * word folding, and a value produced today matches one produced by a
 * different build tomorrow — the property the service result cache
 * depends on.
 */

#ifndef IWC_COMMON_HASH_HH
#define IWC_COMMON_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace iwc
{

/** Incremental 64-bit FNV-1a over explicitly serialized fields. */
class Fnv64
{
  public:
    static constexpr std::uint64_t kOffset = 14695981039346656037ull;
    static constexpr std::uint64_t kPrime = 1099511628211ull;

    void
    addByte(std::uint8_t b)
    {
        hash_ ^= b;
        hash_ *= kPrime;
    }

    /** Folds a 64-bit word little-endian byte by byte. */
    void
    add(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i)
            addByte(static_cast<std::uint8_t>(v >> (i * 8)));
    }

    /** Length-prefixed, so "ab"+"c" never collides with "a"+"bc". */
    void
    addString(std::string_view s)
    {
        add(s.size());
        for (const char c : s)
            addByte(static_cast<std::uint8_t>(c));
    }

    void
    addBytes(const void *data, std::size_t size)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        for (std::size_t i = 0; i < size; ++i)
            addByte(p[i]);
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = kOffset;
};

/** One-shot digest of a string (length-prefixed FNV-1a). */
inline std::uint64_t
fnv64(std::string_view s)
{
    Fnv64 h;
    h.addString(s);
    return h.value();
}

} // namespace iwc

#endif // IWC_COMMON_HASH_HH
