/**
 * @file
 * Bit-manipulation helpers used by the compaction logic and the caches.
 */

#ifndef IWC_COMMON_BITUTIL_HH
#define IWC_COMMON_BITUTIL_HH

#include <bit>
#include <cstdint>

#include "common/types.hh"

namespace iwc
{

/** Population count of a lane mask. */
constexpr unsigned
popCount(LaneMask m)
{
    return static_cast<unsigned>(std::popcount(m));
}

/** True if @p v is a power of two (and nonzero). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power-of-two value. */
constexpr unsigned
log2i(std::uint64_t v)
{
    return static_cast<unsigned>(std::bit_width(v) - 1);
}

/** Ceiling division. */
constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Extracts the @p group_idx-th contiguous group of @p group_width bits
 * from @p mask (group 0 is the least significant).
 */
constexpr LaneMask
extractGroup(LaneMask mask, unsigned group_idx, unsigned group_width)
{
    const LaneMask group_mask = laneMaskForWidth(group_width);
    return (mask >> (group_idx * group_width)) & group_mask;
}

/** Align @p addr down to a multiple of @p align (power of two). */
constexpr Addr
alignDown(Addr addr, std::uint64_t align)
{
    return addr & ~(align - 1);
}

/** Align @p addr up to a multiple of @p align (power of two). */
constexpr Addr
alignUp(Addr addr, std::uint64_t align)
{
    return (addr + align - 1) & ~(align - 1);
}

} // namespace iwc

#endif // IWC_COMMON_BITUTIL_HH
