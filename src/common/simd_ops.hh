/**
 * @file
 * Portable host-SIMD primitives for the vectorized execution backend.
 * Two fixed-width value types cover everything the lane kernels need:
 *
 *   V8  — eight 32-bit lanes (integers, f32 bit patterns, lane masks)
 *   V4D — four f64 lanes (the float domain computes in double, like
 *         the scalar oracle)
 *
 * The implementation is chosen per translation unit by the
 * compiler's target macros: AVX2 intrinsics under __AVX2__, NEON
 * intrinsics for the integer lanes under __ARM_NEON, and plain
 * scalar loops otherwise. The same kernel source compiled into
 * different TUs with different target flags therefore yields
 * independent kernel tables (see func/vector_kernels_impl.hh), which
 * is also why everything here is `static inline`: each TU must get
 * its own internal-linkage copy, never a deduplicated external one.
 *
 * Semantics contract (differentially tested in test_simd_ops.cc):
 * every operation is bit-identical to the scalar oracle's
 * sign/zero-extend-to-64-bit integer semantics and
 * compute-in-double float semantics, including NaN propagation,
 * signed wraparound and out-of-range shift counts.
 */

#ifndef IWC_COMMON_SIMD_OPS_HH
#define IWC_COMMON_SIMD_OPS_HH

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#if defined(__AVX2__)
#include <immintrin.h>
#elif defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace iwc::simd
{

#if defined(__AVX2__)

using V8 = __m256i;
using V4D = __m256d;

#elif defined(__ARM_NEON)

struct V8
{
    uint32x4_t lo;
    uint32x4_t hi;
};

struct V4D
{
    double v[4];
};

#else

struct V8
{
    std::uint32_t v[8];
};

struct V4D
{
    double v[4];
};

#endif

// ---------------------------------------------------------------- V8

/** Unaligned load of eight 32-bit lanes. */
static inline V8
v8load(const void *p)
{
#if defined(__AVX2__)
    return _mm256_loadu_si256(static_cast<const __m256i *>(p));
#elif defined(__ARM_NEON)
    const auto *u = static_cast<const std::uint32_t *>(p);
    return {vld1q_u32(u), vld1q_u32(u + 4)};
#else
    V8 r;
    std::memcpy(r.v, p, sizeof(r.v));
    return r;
#endif
}

/** Unaligned store of eight 32-bit lanes. */
static inline void
v8store(void *p, V8 x)
{
#if defined(__AVX2__)
    _mm256_storeu_si256(static_cast<__m256i *>(p), x);
#elif defined(__ARM_NEON)
    auto *u = static_cast<std::uint32_t *>(p);
    vst1q_u32(u, x.lo);
    vst1q_u32(u + 4, x.hi);
#else
    std::memcpy(p, x.v, sizeof(x.v));
#endif
}

static inline V8
v8splat(std::uint32_t v)
{
#if defined(__AVX2__)
    return _mm256_set1_epi32(static_cast<int>(v));
#elif defined(__ARM_NEON)
    return {vdupq_n_u32(v), vdupq_n_u32(v)};
#else
    V8 r;
    for (unsigned i = 0; i < 8; ++i)
        r.v[i] = v;
    return r;
#endif
}

static inline V8
v8and(V8 a, V8 b)
{
#if defined(__AVX2__)
    return _mm256_and_si256(a, b);
#elif defined(__ARM_NEON)
    return {vandq_u32(a.lo, b.lo), vandq_u32(a.hi, b.hi)};
#else
    V8 r;
    for (unsigned i = 0; i < 8; ++i)
        r.v[i] = a.v[i] & b.v[i];
    return r;
#endif
}

static inline V8
v8or(V8 a, V8 b)
{
#if defined(__AVX2__)
    return _mm256_or_si256(a, b);
#elif defined(__ARM_NEON)
    return {vorrq_u32(a.lo, b.lo), vorrq_u32(a.hi, b.hi)};
#else
    V8 r;
    for (unsigned i = 0; i < 8; ++i)
        r.v[i] = a.v[i] | b.v[i];
    return r;
#endif
}

static inline V8
v8xor(V8 a, V8 b)
{
#if defined(__AVX2__)
    return _mm256_xor_si256(a, b);
#elif defined(__ARM_NEON)
    return {veorq_u32(a.lo, b.lo), veorq_u32(a.hi, b.hi)};
#else
    V8 r;
    for (unsigned i = 0; i < 8; ++i)
        r.v[i] = a.v[i] ^ b.v[i];
    return r;
#endif
}

static inline V8
v8not(V8 a)
{
    return v8xor(a, v8splat(~std::uint32_t{0}));
}

static inline V8
v8add(V8 a, V8 b)
{
#if defined(__AVX2__)
    return _mm256_add_epi32(a, b);
#elif defined(__ARM_NEON)
    return {vaddq_u32(a.lo, b.lo), vaddq_u32(a.hi, b.hi)};
#else
    V8 r;
    for (unsigned i = 0; i < 8; ++i)
        r.v[i] = a.v[i] + b.v[i];
    return r;
#endif
}

static inline V8
v8sub(V8 a, V8 b)
{
#if defined(__AVX2__)
    return _mm256_sub_epi32(a, b);
#elif defined(__ARM_NEON)
    return {vsubq_u32(a.lo, b.lo), vsubq_u32(a.hi, b.hi)};
#else
    V8 r;
    for (unsigned i = 0; i < 8; ++i)
        r.v[i] = a.v[i] - b.v[i];
    return r;
#endif
}

/** Low 32 bits of the lanewise product (congruent mod 2^32). */
static inline V8
v8mul(V8 a, V8 b)
{
#if defined(__AVX2__)
    return _mm256_mullo_epi32(a, b);
#elif defined(__ARM_NEON)
    return {vmulq_u32(a.lo, b.lo), vmulq_u32(a.hi, b.hi)};
#else
    V8 r;
    for (unsigned i = 0; i < 8; ++i)
        r.v[i] = a.v[i] * b.v[i];
    return r;
#endif
}

static inline V8
v8mins(V8 a, V8 b)
{
#if defined(__AVX2__)
    return _mm256_min_epi32(a, b);
#elif defined(__ARM_NEON)
    return {vreinterpretq_u32_s32(vminq_s32(vreinterpretq_s32_u32(a.lo),
                                            vreinterpretq_s32_u32(b.lo))),
            vreinterpretq_u32_s32(vminq_s32(vreinterpretq_s32_u32(a.hi),
                                            vreinterpretq_s32_u32(b.hi)))};
#else
    V8 r;
    for (unsigned i = 0; i < 8; ++i) {
        const auto x = static_cast<std::int32_t>(a.v[i]);
        const auto y = static_cast<std::int32_t>(b.v[i]);
        r.v[i] = static_cast<std::uint32_t>(x < y ? x : y);
    }
    return r;
#endif
}

static inline V8
v8minu(V8 a, V8 b)
{
#if defined(__AVX2__)
    return _mm256_min_epu32(a, b);
#elif defined(__ARM_NEON)
    return {vminq_u32(a.lo, b.lo), vminq_u32(a.hi, b.hi)};
#else
    V8 r;
    for (unsigned i = 0; i < 8; ++i)
        r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
    return r;
#endif
}

static inline V8
v8maxs(V8 a, V8 b)
{
#if defined(__AVX2__)
    return _mm256_max_epi32(a, b);
#elif defined(__ARM_NEON)
    return {vreinterpretq_u32_s32(vmaxq_s32(vreinterpretq_s32_u32(a.lo),
                                            vreinterpretq_s32_u32(b.lo))),
            vreinterpretq_u32_s32(vmaxq_s32(vreinterpretq_s32_u32(a.hi),
                                            vreinterpretq_s32_u32(b.hi)))};
#else
    V8 r;
    for (unsigned i = 0; i < 8; ++i) {
        const auto x = static_cast<std::int32_t>(a.v[i]);
        const auto y = static_cast<std::int32_t>(b.v[i]);
        r.v[i] = static_cast<std::uint32_t>(x > y ? x : y);
    }
    return r;
#endif
}

static inline V8
v8maxu(V8 a, V8 b)
{
#if defined(__AVX2__)
    return _mm256_max_epu32(a, b);
#elif defined(__ARM_NEON)
    return {vmaxq_u32(a.lo, b.lo), vmaxq_u32(a.hi, b.hi)};
#else
    V8 r;
    for (unsigned i = 0; i < 8; ++i)
        r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
    return r;
#endif
}

/**
 * Lanewise shift left by (count & 63): the scalar model computes in
 * 64 bits and truncates, so masked counts in [32, 63] yield zero.
 */
static inline V8
v8shl(V8 a, V8 count)
{
#if defined(__AVX2__)
    // vpsllvd already zeroes lanes whose count is >= 32.
    return _mm256_sllv_epi32(a, v8and(count, v8splat(63)));
#else
    std::uint32_t av[8], cv[8], rv[8];
    v8store(av, a);
    v8store(cv, count);
    for (unsigned i = 0; i < 8; ++i) {
        const unsigned c = cv[i] & 63;
        rv[i] = c >= 32 ? 0 : av[i] << c;
    }
    return v8load(rv);
#endif
}

/** Lanewise logical shift right by (count & 63); >= 32 yields zero. */
static inline V8
v8shrl(V8 a, V8 count)
{
#if defined(__AVX2__)
    return _mm256_srlv_epi32(a, v8and(count, v8splat(63)));
#else
    std::uint32_t av[8], cv[8], rv[8];
    v8store(av, a);
    v8store(cv, count);
    for (unsigned i = 0; i < 8; ++i) {
        const unsigned c = cv[i] & 63;
        rv[i] = c >= 32 ? 0 : av[i] >> c;
    }
    return v8load(rv);
#endif
}

/**
 * Lanewise arithmetic shift right by (count & 63); masked counts in
 * [32, 63] fill with the sign bit, matching 64-bit sign-extended
 * shifts truncated to 32 bits (and vpsravd's saturating behaviour).
 */
static inline V8
v8shra(V8 a, V8 count)
{
#if defined(__AVX2__)
    return _mm256_srav_epi32(a, v8and(count, v8splat(63)));
#else
    std::uint32_t av[8], cv[8], rv[8];
    v8store(av, a);
    v8store(cv, count);
    for (unsigned i = 0; i < 8; ++i) {
        const unsigned c = cv[i] & 63;
        const auto s = static_cast<std::int32_t>(av[i]);
        const std::int64_t wide = static_cast<std::int64_t>(s) >>
            (c >= 32 ? 32 : c);
        rv[i] = static_cast<std::uint32_t>(wide);
    }
    return v8load(rv);
#endif
}

/** Bitwise select: lanes of @p mask are all-ones or all-zeros. */
static inline V8
v8blend(V8 oldv, V8 newv, V8 mask)
{
#if defined(__AVX2__)
    return _mm256_blendv_epi8(oldv, newv, mask);
#elif defined(__ARM_NEON)
    return {vbslq_u32(mask.lo, newv.lo, oldv.lo),
            vbslq_u32(mask.hi, newv.hi, oldv.hi)};
#else
    return v8or(v8and(newv, mask), v8and(oldv, v8not(mask)));
#endif
}

static inline V8
v8eq(V8 a, V8 b)
{
#if defined(__AVX2__)
    return _mm256_cmpeq_epi32(a, b);
#elif defined(__ARM_NEON)
    return {vceqq_u32(a.lo, b.lo), vceqq_u32(a.hi, b.hi)};
#else
    V8 r;
    for (unsigned i = 0; i < 8; ++i)
        r.v[i] = a.v[i] == b.v[i] ? ~std::uint32_t{0} : 0;
    return r;
#endif
}

/** Lanewise signed a > b, as a 0/~0 lane mask. */
static inline V8
v8gts(V8 a, V8 b)
{
#if defined(__AVX2__)
    return _mm256_cmpgt_epi32(a, b);
#elif defined(__ARM_NEON)
    return {vcgtq_s32(vreinterpretq_s32_u32(a.lo),
                      vreinterpretq_s32_u32(b.lo)),
            vcgtq_s32(vreinterpretq_s32_u32(a.hi),
                      vreinterpretq_s32_u32(b.hi))};
#else
    V8 r;
    for (unsigned i = 0; i < 8; ++i) {
        r.v[i] = static_cast<std::int32_t>(a.v[i]) >
                static_cast<std::int32_t>(b.v[i])
            ? ~std::uint32_t{0}
            : 0;
    }
    return r;
#endif
}

/** Lanewise unsigned a > b, as a 0/~0 lane mask. */
static inline V8
v8gtu(V8 a, V8 b)
{
#if defined(__AVX2__)
    // No unsigned compare before AVX-512: bias into signed range.
    const V8 bias = v8splat(0x80000000u);
    return _mm256_cmpgt_epi32(v8xor(a, bias), v8xor(b, bias));
#elif defined(__ARM_NEON)
    return {vcgtq_u32(a.lo, b.lo), vcgtq_u32(a.hi, b.hi)};
#else
    V8 r;
    for (unsigned i = 0; i < 8; ++i)
        r.v[i] = a.v[i] > b.v[i] ? ~std::uint32_t{0} : 0;
    return r;
#endif
}

/** One bit per lane: the lane's most significant (sign/mask) bit. */
static inline std::uint32_t
v8msb(V8 a)
{
#if defined(__AVX2__)
    return static_cast<std::uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(a)));
#else
    std::uint32_t av[8];
    v8store(av, a);
    std::uint32_t bits = 0;
    for (unsigned i = 0; i < 8; ++i)
        bits |= (av[i] >> 31) << i;
    return bits;
#endif
}

// --------------------------------------------------------------- V4D

/** Widens lanes 0..3 of eight f32 bit patterns to doubles. */
static inline V4D
v4dwidenlo(V8 x)
{
#if defined(__AVX2__)
    return _mm256_cvtps_pd(_mm_castsi128_ps(_mm256_castsi256_si128(x)));
#else
    std::uint32_t xv[8];
    v8store(xv, x);
    V4D r;
    for (unsigned i = 0; i < 4; ++i)
        r.v[i] = static_cast<double>(std::bit_cast<float>(xv[i]));
    return r;
#endif
}

/** Widens lanes 4..7 of eight f32 bit patterns to doubles. */
static inline V4D
v4dwidenhi(V8 x)
{
#if defined(__AVX2__)
    return _mm256_cvtps_pd(
        _mm_castsi128_ps(_mm256_extracti128_si256(x, 1)));
#else
    std::uint32_t xv[8];
    v8store(xv, x);
    V4D r;
    for (unsigned i = 0; i < 4; ++i)
        r.v[i] = static_cast<double>(std::bit_cast<float>(xv[i + 4]));
    return r;
#endif
}

/** Rounds eight doubles back to f32 bit patterns (round-to-nearest). */
static inline V8
v8narrow(V4D lo, V4D hi)
{
#if defined(__AVX2__)
    const __m128 l = _mm256_cvtpd_ps(lo);
    const __m128 h = _mm256_cvtpd_ps(hi);
    return _mm256_castps_si256(
        _mm256_insertf128_ps(_mm256_castps128_ps256(l), h, 1));
#else
    V8 r;
    for (unsigned i = 0; i < 4; ++i) {
        r.v[i] =
            std::bit_cast<std::uint32_t>(static_cast<float>(lo.v[i]));
        r.v[i + 4] =
            std::bit_cast<std::uint32_t>(static_cast<float>(hi.v[i]));
    }
    return r;
#endif
}

static inline V4D
v4dsplat(double v)
{
#if defined(__AVX2__)
    return _mm256_set1_pd(v);
#else
    return {{v, v, v, v}};
#endif
}

static inline V4D
v4dadd(V4D a, V4D b)
{
#if defined(__AVX2__)
    return _mm256_add_pd(a, b);
#else
    V4D r;
    for (unsigned i = 0; i < 4; ++i)
        r.v[i] = a.v[i] + b.v[i];
    return r;
#endif
}

static inline V4D
v4dsub(V4D a, V4D b)
{
#if defined(__AVX2__)
    return _mm256_sub_pd(a, b);
#else
    V4D r;
    for (unsigned i = 0; i < 4; ++i)
        r.v[i] = a.v[i] - b.v[i];
    return r;
#endif
}

static inline V4D
v4dmul(V4D a, V4D b)
{
#if defined(__AVX2__)
    return _mm256_mul_pd(a, b);
#else
    V4D r;
    for (unsigned i = 0; i < 4; ++i)
        r.v[i] = a.v[i] * b.v[i];
    return r;
#endif
}

/**
 * a * b + c with the product rounded before the add (no FMA
 * contraction), matching the scalar oracle's two-operation form.
 */
static inline V4D
v4dmad(V4D a, V4D b, V4D c)
{
#if defined(__AVX2__)
    return _mm256_add_pd(_mm256_mul_pd(a, b), c);
#else
    V4D r;
    for (unsigned i = 0; i < 4; ++i) {
        const double p = a.v[i] * b.v[i];
        r.v[i] = p + c.v[i];
    }
    return r;
#endif
}

static inline V4D
v4ddiv(V4D a, V4D b)
{
#if defined(__AVX2__)
    return _mm256_div_pd(a, b);
#else
    V4D r;
    for (unsigned i = 0; i < 4; ++i)
        r.v[i] = a.v[i] / b.v[i];
    return r;
#endif
}

static inline V4D
v4dsqrt(V4D a)
{
#if defined(__AVX2__)
    return _mm256_sqrt_pd(a);
#else
    V4D r;
    for (unsigned i = 0; i < 4; ++i)
        r.v[i] = std::sqrt(a.v[i]);
    return r;
#endif
}

static inline V4D
v4dfloor(V4D a)
{
#if defined(__AVX2__)
    return _mm256_floor_pd(a);
#else
    V4D r;
    for (unsigned i = 0; i < 4; ++i)
        r.v[i] = std::floor(a.v[i]);
    return r;
#endif
}

/**
 * Pinned min select (deliberately NOT libm fmin, whose tie and NaN
 * ordering rules vary across implementations): a wins when a < b or
 * when b is NaN; ties and an a-only NaN take b. Both operands NaN
 * leaves a NaN, which the lane kernels canonicalize (v4dcanon), so
 * no payload ever escapes.
 */
static inline V4D
v4dfmin(V4D a, V4D b)
{
#if defined(__AVX2__)
    const V4D lt = _mm256_cmp_pd(a, b, _CMP_LT_OQ);
    const V4D b_nan = _mm256_cmp_pd(b, b, _CMP_UNORD_Q);
    return _mm256_blendv_pd(b, a, _mm256_or_pd(lt, b_nan));
#else
    V4D r;
    for (unsigned i = 0; i < 4; ++i)
        r.v[i] =
            (a.v[i] < b.v[i] || std::isnan(b.v[i])) ? a.v[i] : b.v[i];
    return r;
#endif
}

/** Pinned max select; mirror of v4dfmin. */
static inline V4D
v4dfmax(V4D a, V4D b)
{
#if defined(__AVX2__)
    const V4D gt = _mm256_cmp_pd(a, b, _CMP_GT_OQ);
    const V4D b_nan = _mm256_cmp_pd(b, b, _CMP_UNORD_Q);
    return _mm256_blendv_pd(b, a, _mm256_or_pd(gt, b_nan));
#else
    V4D r;
    for (unsigned i = 0; i < 4; ++i)
        r.v[i] =
            (a.v[i] > b.v[i] || std::isnan(b.v[i])) ? a.v[i] : b.v[i];
    return r;
#endif
}

/**
 * Replaces NaN lanes with the default quiet NaN. Float ALU results
 * pass through this before narrowing: NaN payload propagation is not
 * pinnable (compilers may commute operands and hardware NaN selection
 * rules differ), so the pinned ISA semantics canonicalize instead.
 */
static inline V4D
v4dcanon(V4D r)
{
#if defined(__AVX2__)
    const V4D nan = _mm256_cmp_pd(r, r, _CMP_UNORD_Q);
    return _mm256_blendv_pd(
        r, _mm256_set1_pd(std::numeric_limits<double>::quiet_NaN()),
        nan);
#else
    for (unsigned i = 0; i < 4; ++i)
        if (std::isnan(r.v[i]))
            r.v[i] = std::numeric_limits<double>::quiet_NaN();
    return r;
#endif
}

/** Comparison predicates as 0/~0 lane masks (quiet, NaN => false
 * except Ne, which is true on NaN like C's !=). */
static inline V4D
v4deq(V4D a, V4D b)
{
#if defined(__AVX2__)
    return _mm256_cmp_pd(a, b, _CMP_EQ_OQ);
#else
    V4D r;
    for (unsigned i = 0; i < 4; ++i)
        r.v[i] = std::bit_cast<double>(
            a.v[i] == b.v[i] ? ~std::uint64_t{0} : std::uint64_t{0});
    return r;
#endif
}

static inline V4D
v4dne(V4D a, V4D b)
{
#if defined(__AVX2__)
    return _mm256_cmp_pd(a, b, _CMP_NEQ_UQ);
#else
    V4D r;
    for (unsigned i = 0; i < 4; ++i)
        r.v[i] = std::bit_cast<double>(
            a.v[i] != b.v[i] ? ~std::uint64_t{0} : std::uint64_t{0});
    return r;
#endif
}

static inline V4D
v4dlt(V4D a, V4D b)
{
#if defined(__AVX2__)
    return _mm256_cmp_pd(a, b, _CMP_LT_OQ);
#else
    V4D r;
    for (unsigned i = 0; i < 4; ++i)
        r.v[i] = std::bit_cast<double>(
            a.v[i] < b.v[i] ? ~std::uint64_t{0} : std::uint64_t{0});
    return r;
#endif
}

static inline V4D
v4dle(V4D a, V4D b)
{
#if defined(__AVX2__)
    return _mm256_cmp_pd(a, b, _CMP_LE_OQ);
#else
    V4D r;
    for (unsigned i = 0; i < 4; ++i)
        r.v[i] = std::bit_cast<double>(
            a.v[i] <= b.v[i] ? ~std::uint64_t{0} : std::uint64_t{0});
    return r;
#endif
}

static inline V4D
v4dgt(V4D a, V4D b)
{
#if defined(__AVX2__)
    return _mm256_cmp_pd(a, b, _CMP_GT_OQ);
#else
    V4D r;
    for (unsigned i = 0; i < 4; ++i)
        r.v[i] = std::bit_cast<double>(
            a.v[i] > b.v[i] ? ~std::uint64_t{0} : std::uint64_t{0});
    return r;
#endif
}

static inline V4D
v4dge(V4D a, V4D b)
{
#if defined(__AVX2__)
    return _mm256_cmp_pd(a, b, _CMP_GE_OQ);
#else
    V4D r;
    for (unsigned i = 0; i < 4; ++i)
        r.v[i] = std::bit_cast<double>(
            a.v[i] >= b.v[i] ? ~std::uint64_t{0} : std::uint64_t{0});
    return r;
#endif
}

/** One bit per double lane: its most significant (mask) bit. */
static inline std::uint32_t
v4dmsb(V4D a)
{
#if defined(__AVX2__)
    return static_cast<std::uint32_t>(_mm256_movemask_pd(a));
#else
    std::uint32_t bits = 0;
    for (unsigned i = 0; i < 4; ++i) {
        bits |= static_cast<std::uint32_t>(
                    std::bit_cast<std::uint64_t>(a.v[i]) >> 63)
            << i;
    }
    return bits;
#endif
}

} // namespace iwc::simd

#endif // IWC_COMMON_SIMD_OPS_HH
