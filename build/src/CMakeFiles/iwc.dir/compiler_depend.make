# Empty compiler generated dependencies file for iwc.
# This may be replaced when dependencies are built.
