
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/config.cc" "src/CMakeFiles/iwc.dir/common/config.cc.o" "gcc" "src/CMakeFiles/iwc.dir/common/config.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/iwc.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/iwc.dir/common/logging.cc.o.d"
  "/root/repo/src/compaction/cycle_plan.cc" "src/CMakeFiles/iwc.dir/compaction/cycle_plan.cc.o" "gcc" "src/CMakeFiles/iwc.dir/compaction/cycle_plan.cc.o.d"
  "/root/repo/src/compaction/energy.cc" "src/CMakeFiles/iwc.dir/compaction/energy.cc.o" "gcc" "src/CMakeFiles/iwc.dir/compaction/energy.cc.o.d"
  "/root/repo/src/compaction/interwarp.cc" "src/CMakeFiles/iwc.dir/compaction/interwarp.cc.o" "gcc" "src/CMakeFiles/iwc.dir/compaction/interwarp.cc.o.d"
  "/root/repo/src/compaction/mask_info.cc" "src/CMakeFiles/iwc.dir/compaction/mask_info.cc.o" "gcc" "src/CMakeFiles/iwc.dir/compaction/mask_info.cc.o.d"
  "/root/repo/src/compaction/rf_area.cc" "src/CMakeFiles/iwc.dir/compaction/rf_area.cc.o" "gcc" "src/CMakeFiles/iwc.dir/compaction/rf_area.cc.o.d"
  "/root/repo/src/compaction/scc_algorithm.cc" "src/CMakeFiles/iwc.dir/compaction/scc_algorithm.cc.o" "gcc" "src/CMakeFiles/iwc.dir/compaction/scc_algorithm.cc.o.d"
  "/root/repo/src/eu/arbiter.cc" "src/CMakeFiles/iwc.dir/eu/arbiter.cc.o" "gcc" "src/CMakeFiles/iwc.dir/eu/arbiter.cc.o.d"
  "/root/repo/src/eu/eu_core.cc" "src/CMakeFiles/iwc.dir/eu/eu_core.cc.o" "gcc" "src/CMakeFiles/iwc.dir/eu/eu_core.cc.o.d"
  "/root/repo/src/eu/pipes.cc" "src/CMakeFiles/iwc.dir/eu/pipes.cc.o" "gcc" "src/CMakeFiles/iwc.dir/eu/pipes.cc.o.d"
  "/root/repo/src/eu/scoreboard.cc" "src/CMakeFiles/iwc.dir/eu/scoreboard.cc.o" "gcc" "src/CMakeFiles/iwc.dir/eu/scoreboard.cc.o.d"
  "/root/repo/src/func/interp.cc" "src/CMakeFiles/iwc.dir/func/interp.cc.o" "gcc" "src/CMakeFiles/iwc.dir/func/interp.cc.o.d"
  "/root/repo/src/func/memory.cc" "src/CMakeFiles/iwc.dir/func/memory.cc.o" "gcc" "src/CMakeFiles/iwc.dir/func/memory.cc.o.d"
  "/root/repo/src/func/thread_state.cc" "src/CMakeFiles/iwc.dir/func/thread_state.cc.o" "gcc" "src/CMakeFiles/iwc.dir/func/thread_state.cc.o.d"
  "/root/repo/src/gpu/device.cc" "src/CMakeFiles/iwc.dir/gpu/device.cc.o" "gcc" "src/CMakeFiles/iwc.dir/gpu/device.cc.o.d"
  "/root/repo/src/gpu/dispatcher.cc" "src/CMakeFiles/iwc.dir/gpu/dispatcher.cc.o" "gcc" "src/CMakeFiles/iwc.dir/gpu/dispatcher.cc.o.d"
  "/root/repo/src/gpu/gpu_config.cc" "src/CMakeFiles/iwc.dir/gpu/gpu_config.cc.o" "gcc" "src/CMakeFiles/iwc.dir/gpu/gpu_config.cc.o.d"
  "/root/repo/src/gpu/simulator.cc" "src/CMakeFiles/iwc.dir/gpu/simulator.cc.o" "gcc" "src/CMakeFiles/iwc.dir/gpu/simulator.cc.o.d"
  "/root/repo/src/isa/builder.cc" "src/CMakeFiles/iwc.dir/isa/builder.cc.o" "gcc" "src/CMakeFiles/iwc.dir/isa/builder.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/CMakeFiles/iwc.dir/isa/disasm.cc.o" "gcc" "src/CMakeFiles/iwc.dir/isa/disasm.cc.o.d"
  "/root/repo/src/isa/isa.cc" "src/CMakeFiles/iwc.dir/isa/isa.cc.o" "gcc" "src/CMakeFiles/iwc.dir/isa/isa.cc.o.d"
  "/root/repo/src/isa/kernel.cc" "src/CMakeFiles/iwc.dir/isa/kernel.cc.o" "gcc" "src/CMakeFiles/iwc.dir/isa/kernel.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/iwc.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/iwc.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/coalescer.cc" "src/CMakeFiles/iwc.dir/mem/coalescer.cc.o" "gcc" "src/CMakeFiles/iwc.dir/mem/coalescer.cc.o.d"
  "/root/repo/src/mem/data_cluster.cc" "src/CMakeFiles/iwc.dir/mem/data_cluster.cc.o" "gcc" "src/CMakeFiles/iwc.dir/mem/data_cluster.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/iwc.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/iwc.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/mem_system.cc" "src/CMakeFiles/iwc.dir/mem/mem_system.cc.o" "gcc" "src/CMakeFiles/iwc.dir/mem/mem_system.cc.o.d"
  "/root/repo/src/mem/slm.cc" "src/CMakeFiles/iwc.dir/mem/slm.cc.o" "gcc" "src/CMakeFiles/iwc.dir/mem/slm.cc.o.d"
  "/root/repo/src/stats/stats.cc" "src/CMakeFiles/iwc.dir/stats/stats.cc.o" "gcc" "src/CMakeFiles/iwc.dir/stats/stats.cc.o.d"
  "/root/repo/src/stats/table.cc" "src/CMakeFiles/iwc.dir/stats/table.cc.o" "gcc" "src/CMakeFiles/iwc.dir/stats/table.cc.o.d"
  "/root/repo/src/trace/analyzer.cc" "src/CMakeFiles/iwc.dir/trace/analyzer.cc.o" "gcc" "src/CMakeFiles/iwc.dir/trace/analyzer.cc.o.d"
  "/root/repo/src/trace/synthetic.cc" "src/CMakeFiles/iwc.dir/trace/synthetic.cc.o" "gcc" "src/CMakeFiles/iwc.dir/trace/synthetic.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/iwc.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/iwc.dir/trace/trace.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/CMakeFiles/iwc.dir/trace/trace_io.cc.o" "gcc" "src/CMakeFiles/iwc.dir/trace/trace_io.cc.o.d"
  "/root/repo/src/workloads/extra.cc" "src/CMakeFiles/iwc.dir/workloads/extra.cc.o" "gcc" "src/CMakeFiles/iwc.dir/workloads/extra.cc.o.d"
  "/root/repo/src/workloads/finance.cc" "src/CMakeFiles/iwc.dir/workloads/finance.cc.o" "gcc" "src/CMakeFiles/iwc.dir/workloads/finance.cc.o.d"
  "/root/repo/src/workloads/graph.cc" "src/CMakeFiles/iwc.dir/workloads/graph.cc.o" "gcc" "src/CMakeFiles/iwc.dir/workloads/graph.cc.o.d"
  "/root/repo/src/workloads/image.cc" "src/CMakeFiles/iwc.dir/workloads/image.cc.o" "gcc" "src/CMakeFiles/iwc.dir/workloads/image.cc.o.d"
  "/root/repo/src/workloads/linear_algebra.cc" "src/CMakeFiles/iwc.dir/workloads/linear_algebra.cc.o" "gcc" "src/CMakeFiles/iwc.dir/workloads/linear_algebra.cc.o.d"
  "/root/repo/src/workloads/micro.cc" "src/CMakeFiles/iwc.dir/workloads/micro.cc.o" "gcc" "src/CMakeFiles/iwc.dir/workloads/micro.cc.o.d"
  "/root/repo/src/workloads/raytrace.cc" "src/CMakeFiles/iwc.dir/workloads/raytrace.cc.o" "gcc" "src/CMakeFiles/iwc.dir/workloads/raytrace.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/iwc.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/iwc.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/rodinia.cc" "src/CMakeFiles/iwc.dir/workloads/rodinia.cc.o" "gcc" "src/CMakeFiles/iwc.dir/workloads/rodinia.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/iwc.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/iwc.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
