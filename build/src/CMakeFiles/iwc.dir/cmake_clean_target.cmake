file(REMOVE_RECURSE
  "libiwc.a"
)
