# Empty compiler generated dependencies file for divergence_study.
# This may be replaced when dependencies are built.
