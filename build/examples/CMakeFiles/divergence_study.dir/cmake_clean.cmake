file(REMOVE_RECURSE
  "CMakeFiles/divergence_study.dir/divergence_study.cc.o"
  "CMakeFiles/divergence_study.dir/divergence_study.cc.o.d"
  "divergence_study"
  "divergence_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/divergence_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
