# Empty dependencies file for iwc_tests.
# This may be replaced when dependencies are built.
