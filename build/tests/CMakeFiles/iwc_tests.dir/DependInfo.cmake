
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analyzer.cc" "tests/CMakeFiles/iwc_tests.dir/test_analyzer.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_analyzer.cc.o.d"
  "/root/repo/tests/test_builder.cc" "tests/CMakeFiles/iwc_tests.dir/test_builder.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_builder.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/iwc_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_coalescer.cc" "tests/CMakeFiles/iwc_tests.dir/test_coalescer.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_coalescer.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/iwc_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_compaction.cc" "tests/CMakeFiles/iwc_tests.dir/test_compaction.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_compaction.cc.o.d"
  "/root/repo/tests/test_device.cc" "tests/CMakeFiles/iwc_tests.dir/test_device.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_device.cc.o.d"
  "/root/repo/tests/test_dispatcher.cc" "tests/CMakeFiles/iwc_tests.dir/test_dispatcher.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_dispatcher.cc.o.d"
  "/root/repo/tests/test_energy.cc" "tests/CMakeFiles/iwc_tests.dir/test_energy.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_energy.cc.o.d"
  "/root/repo/tests/test_eu_core.cc" "tests/CMakeFiles/iwc_tests.dir/test_eu_core.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_eu_core.cc.o.d"
  "/root/repo/tests/test_fuzz_interp.cc" "tests/CMakeFiles/iwc_tests.dir/test_fuzz_interp.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_fuzz_interp.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/iwc_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_interp.cc" "tests/CMakeFiles/iwc_tests.dir/test_interp.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_interp.cc.o.d"
  "/root/repo/tests/test_interwarp.cc" "tests/CMakeFiles/iwc_tests.dir/test_interwarp.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_interwarp.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/iwc_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_mem_system.cc" "tests/CMakeFiles/iwc_tests.dir/test_mem_system.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_mem_system.cc.o.d"
  "/root/repo/tests/test_memory.cc" "tests/CMakeFiles/iwc_tests.dir/test_memory.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_memory.cc.o.d"
  "/root/repo/tests/test_ndrange_shapes.cc" "tests/CMakeFiles/iwc_tests.dir/test_ndrange_shapes.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_ndrange_shapes.cc.o.d"
  "/root/repo/tests/test_pipes_arbiter.cc" "tests/CMakeFiles/iwc_tests.dir/test_pipes_arbiter.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_pipes_arbiter.cc.o.d"
  "/root/repo/tests/test_rf_area.cc" "tests/CMakeFiles/iwc_tests.dir/test_rf_area.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_rf_area.cc.o.d"
  "/root/repo/tests/test_scc_algorithm.cc" "tests/CMakeFiles/iwc_tests.dir/test_scc_algorithm.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_scc_algorithm.cc.o.d"
  "/root/repo/tests/test_scoreboard.cc" "tests/CMakeFiles/iwc_tests.dir/test_scoreboard.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_scoreboard.cc.o.d"
  "/root/repo/tests/test_simd32.cc" "tests/CMakeFiles/iwc_tests.dir/test_simd32.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_simd32.cc.o.d"
  "/root/repo/tests/test_simulator.cc" "tests/CMakeFiles/iwc_tests.dir/test_simulator.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_simulator.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/iwc_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_suite_smoke.cc" "tests/CMakeFiles/iwc_tests.dir/test_suite_smoke.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_suite_smoke.cc.o.d"
  "/root/repo/tests/test_synthetic.cc" "tests/CMakeFiles/iwc_tests.dir/test_synthetic.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_synthetic.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/iwc_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/iwc_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/iwc_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iwc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
