# Empty dependencies file for ablation_scc_policy.
# This may be replaced when dependencies are built.
