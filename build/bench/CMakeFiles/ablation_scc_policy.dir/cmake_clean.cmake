file(REMOVE_RECURSE
  "CMakeFiles/ablation_scc_policy.dir/ablation_scc_policy.cc.o"
  "CMakeFiles/ablation_scc_policy.dir/ablation_scc_policy.cc.o.d"
  "ablation_scc_policy"
  "ablation_scc_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scc_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
