file(REMOVE_RECURSE
  "CMakeFiles/fig09_utilization.dir/fig09_utilization.cc.o"
  "CMakeFiles/fig09_utilization.dir/fig09_utilization.cc.o.d"
  "fig09_utilization"
  "fig09_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
