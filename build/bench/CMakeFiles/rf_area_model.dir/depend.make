# Empty dependencies file for rf_area_model.
# This may be replaced when dependencies are built.
