file(REMOVE_RECURSE
  "CMakeFiles/rf_area_model.dir/rf_area_model.cc.o"
  "CMakeFiles/rf_area_model.dir/rf_area_model.cc.o.d"
  "rf_area_model"
  "rf_area_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_area_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
