# Empty compiler generated dependencies file for tab02_nested_branches.
# This may be replaced when dependencies are built.
