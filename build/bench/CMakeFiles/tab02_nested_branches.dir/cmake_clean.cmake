file(REMOVE_RECURSE
  "CMakeFiles/tab02_nested_branches.dir/tab02_nested_branches.cc.o"
  "CMakeFiles/tab02_nested_branches.dir/tab02_nested_branches.cc.o.d"
  "tab02_nested_branches"
  "tab02_nested_branches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_nested_branches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
