file(REMOVE_RECURSE
  "CMakeFiles/fig03_simd_efficiency.dir/fig03_simd_efficiency.cc.o"
  "CMakeFiles/fig03_simd_efficiency.dir/fig03_simd_efficiency.cc.o.d"
  "fig03_simd_efficiency"
  "fig03_simd_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_simd_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
