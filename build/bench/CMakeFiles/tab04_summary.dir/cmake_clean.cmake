file(REMOVE_RECURSE
  "CMakeFiles/tab04_summary.dir/tab04_summary.cc.o"
  "CMakeFiles/tab04_summary.dir/tab04_summary.cc.o.d"
  "tab04_summary"
  "tab04_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
