# Empty compiler generated dependencies file for tab04_summary.
# This may be replaced when dependencies are built.
