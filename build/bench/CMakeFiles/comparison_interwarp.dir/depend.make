# Empty dependencies file for comparison_interwarp.
# This may be replaced when dependencies are built.
