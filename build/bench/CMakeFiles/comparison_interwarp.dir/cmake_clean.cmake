file(REMOVE_RECURSE
  "CMakeFiles/comparison_interwarp.dir/comparison_interwarp.cc.o"
  "CMakeFiles/comparison_interwarp.dir/comparison_interwarp.cc.o.d"
  "comparison_interwarp"
  "comparison_interwarp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comparison_interwarp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
