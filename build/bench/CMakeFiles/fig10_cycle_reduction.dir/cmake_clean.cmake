file(REMOVE_RECURSE
  "CMakeFiles/fig10_cycle_reduction.dir/fig10_cycle_reduction.cc.o"
  "CMakeFiles/fig10_cycle_reduction.dir/fig10_cycle_reduction.cc.o.d"
  "fig10_cycle_reduction"
  "fig10_cycle_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cycle_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
