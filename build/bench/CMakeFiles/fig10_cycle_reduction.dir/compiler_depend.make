# Empty compiler generated dependencies file for fig10_cycle_reduction.
# This may be replaced when dependencies are built.
