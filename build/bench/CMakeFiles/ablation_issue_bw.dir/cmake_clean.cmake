file(REMOVE_RECURSE
  "CMakeFiles/ablation_issue_bw.dir/ablation_issue_bw.cc.o"
  "CMakeFiles/ablation_issue_bw.dir/ablation_issue_bw.cc.o.d"
  "ablation_issue_bw"
  "ablation_issue_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_issue_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
