# Empty dependencies file for ablation_issue_bw.
# This may be replaced when dependencies are built.
