# Empty dependencies file for fig11_raytracing.
# This may be replaced when dependencies are built.
