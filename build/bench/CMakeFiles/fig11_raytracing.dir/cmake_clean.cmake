file(REMOVE_RECURSE
  "CMakeFiles/fig11_raytracing.dir/fig11_raytracing.cc.o"
  "CMakeFiles/fig11_raytracing.dir/fig11_raytracing.cc.o.d"
  "fig11_raytracing"
  "fig11_raytracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_raytracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
