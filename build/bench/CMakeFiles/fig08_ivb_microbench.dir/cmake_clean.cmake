file(REMOVE_RECURSE
  "CMakeFiles/fig08_ivb_microbench.dir/fig08_ivb_microbench.cc.o"
  "CMakeFiles/fig08_ivb_microbench.dir/fig08_ivb_microbench.cc.o.d"
  "fig08_ivb_microbench"
  "fig08_ivb_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_ivb_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
