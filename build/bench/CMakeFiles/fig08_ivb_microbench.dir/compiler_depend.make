# Empty compiler generated dependencies file for fig08_ivb_microbench.
# This may be replaced when dependencies are built.
