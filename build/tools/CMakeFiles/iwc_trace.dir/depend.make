# Empty dependencies file for iwc_trace.
# This may be replaced when dependencies are built.
