file(REMOVE_RECURSE
  "CMakeFiles/iwc_trace.dir/iwc_trace.cc.o"
  "CMakeFiles/iwc_trace.dir/iwc_trace.cc.o.d"
  "iwc_trace"
  "iwc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iwc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
