file(REMOVE_RECURSE
  "CMakeFiles/iwc_sim.dir/iwc_sim.cc.o"
  "CMakeFiles/iwc_sim.dir/iwc_sim.cc.o.d"
  "iwc_sim"
  "iwc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iwc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
