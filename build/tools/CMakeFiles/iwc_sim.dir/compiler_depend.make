# Empty compiler generated dependencies file for iwc_sim.
# This may be replaced when dependencies are built.
