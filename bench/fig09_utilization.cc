/**
 * @file
 * Figure 9: SIMD utilization breakdown of SIMD8/SIMD16 instructions
 * in the divergent workloads — the fraction of instructions whose
 * active-lane count falls in each compaction-opportunity bin.
 *
 * Paper shape: divergent workloads carry substantial fractions below
 * 13-16/16 (each such instruction can shed 1-3 execution cycles);
 * LuxMark-style SIMD8 kernels report only the two SIMD8 bins.
 */

#include <vector>

#include "run/experiment.hh"
#include "trace/synthetic.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    using compaction::UtilBin;
    const OptionMap opts(argc, argv);
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 1));

    std::vector<run::RunRequest> requests;
    for (const auto &name : workloads::divergentNames())
        requests.push_back(
            run::RunRequest::functionalTrace(name, scale));
    for (const auto &profile : trace::paperTraceProfiles()) {
        if (profile.divergentFraction < 0.3)
            continue;
        requests.push_back(run::RunRequest::syntheticTrace(profile.name));
    }

    run::SweepRunner runner(run::sweepOptions(opts));
    const auto results = runner.run(requests);

    const UtilBin bins[] = {
        UtilBin::S16Active1To4,  UtilBin::S16Active5To8,
        UtilBin::S16Active9To12, UtilBin::S16Active13To16,
        UtilBin::S8Active1To4,   UtilBin::S8Active5To8,
    };

    stats::Table table({"workload", "source", "1-4/16", "5-8/16",
                        "9-12/16", "13-16/16", "1-4/8", "5-8/8"});
    for (const auto &result : results) {
        auto &row = table.row().cell(result.label).cell(
            result.kind == run::JobKind::FunctionalTrace ? "exec"
                                                         : "trace");
        for (const UtilBin bin : bins)
            row.cellPct(result.analysis.utilFraction(bin));
    }

    run::printTable(table,
                    "Figure 9: SIMD utilization breakdown in "
                    "SIMD8/SIMD16 instructions (divergent apps)",
                    opts);
    return 0;
}
