/**
 * @file
 * Figure 9: SIMD utilization breakdown of SIMD8/SIMD16 instructions
 * in the divergent workloads — the fraction of instructions whose
 * active-lane count falls in each compaction-opportunity bin.
 *
 * Paper shape: divergent workloads carry substantial fractions below
 * 13-16/16 (each such instruction can shed 1-3 execution cycles);
 * LuxMark-style SIMD8 kernels report only the two SIMD8 bins.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    using compaction::UtilBin;
    const OptionMap opts(argc, argv);
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 1));

    const UtilBin bins[] = {
        UtilBin::S16Active1To4,  UtilBin::S16Active5To8,
        UtilBin::S16Active9To12, UtilBin::S16Active13To16,
        UtilBin::S8Active1To4,   UtilBin::S8Active5To8,
    };

    stats::Table table({"workload", "source", "1-4/16", "5-8/16",
                        "9-12/16", "13-16/16", "1-4/8", "5-8/8"});

    auto add_row = [&](const std::string &name,
                       const std::string &source,
                       const trace::TraceAnalysis &a) {
        auto &row = table.row().cell(name).cell(source);
        for (const UtilBin bin : bins)
            row.cellPct(a.utilFraction(bin));
    };

    for (const auto &name : workloads::divergentNames())
        add_row(name, "exec", bench::analyzeWorkload(name, scale));
    for (const auto &profile : trace::paperTraceProfiles()) {
        if (profile.divergentFraction < 0.3)
            continue;
        add_row(profile.name, "trace",
                trace::analyzeTrace(trace::synthesize(profile)));
    }

    bench::printTable(table,
                      "Figure 9: SIMD utilization breakdown in "
                      "SIMD8/SIMD16 instructions (divergent apps)",
                      opts);
    return 0;
}
