/**
 * @file
 * Table 4: summary of BCC and SCC benefits for divergent workloads —
 * maximum and average EU-cycle reduction for the execution-driven
 * suite ("GPGenSim") and the trace workloads, and maximum and average
 * execution-time reduction under the DC1 and DC2 memory subsystems.
 *
 * Paper numbers: EU cycles (exec) 36%/18% max/avg BCC, 38%/24% SCC;
 * traces 31%/12% BCC, 42%/18% SCC; execution time DC1 21%/5% BCC,
 * 21%/7% SCC; DC2 28%/12% BCC, 36%/18% SCC.
 */

#include <vector>

#include "bench_util.hh"

namespace
{

struct MaxAvg
{
    double max_v = 0;
    double sum = 0;
    unsigned n = 0;

    void
    add(double v)
    {
        max_v = std::max(max_v, v);
        sum += v;
        ++n;
    }

    double avg() const { return n ? sum / n : 0; }
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace iwc;
    using compaction::Mode;
    const OptionMap opts(argc, argv);
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 1));
    const unsigned timing_scale =
        static_cast<unsigned>(opts.getInt("timing_scale", scale));

    MaxAvg exec_bcc, exec_scc, trace_bcc, trace_scc;
    MaxAvg dc1_bcc, dc1_scc, dc2_bcc, dc2_scc;

    // EU cycles, execution-driven suite.
    for (const auto &name : workloads::divergentNames()) {
        const auto a = bench::analyzeWorkload(name, scale);
        exec_bcc.add(a.reduction(Mode::Bcc));
        exec_scc.add(a.reduction(Mode::Scc));
    }

    // EU cycles, trace workloads.
    for (const auto &profile : trace::paperTraceProfiles()) {
        if (profile.divergentFraction < 0.3)
            continue;
        const auto a = trace::analyzeTrace(trace::synthesize(profile));
        trace_bcc.add(a.reduction(Mode::Bcc));
        trace_scc.add(a.reduction(Mode::Scc));
    }

    // Execution time, DC1/DC2, on the timing subset (the paper's
    // 14 GPGenSim divergent benchmarks; we use the suite's divergent
    // set minus the micro-kernels).
    for (const auto &name : workloads::divergentNames()) {
        if (name.rfind("micro", 0) == 0)
            continue;
        gpu::LaunchStats runs[3][2];
        const Mode modes[3] = {Mode::IvbOpt, Mode::Bcc, Mode::Scc};
        for (unsigned m = 0; m < 3; ++m) {
            for (unsigned dc = 0; dc < 2; ++dc) {
                gpu::GpuConfig config = gpu::applyOptions(
                    gpu::ivbConfig(modes[m]), opts);
                config.mem.dcLinesPerCycle = dc + 1;
                runs[m][dc] = bench::runWorkloadTiming(name, config,
                                                       timing_scale);
            }
        }
        auto reduction = [&](unsigned m, unsigned dc) {
            return 1.0 -
                static_cast<double>(runs[m][dc].totalCycles) /
                runs[0][dc].totalCycles;
        };
        dc1_bcc.add(reduction(1, 0));
        dc1_scc.add(reduction(2, 0));
        dc2_bcc.add(reduction(1, 1));
        dc2_scc.add(reduction(2, 1));
    }

    stats::Table table({"metric", "bcc_max", "bcc_avg", "scc_max",
                        "scc_avg"});
    auto add = [&](const char *name, const MaxAvg &bcc,
                   const MaxAvg &scc) {
        table.row()
            .cell(name)
            .cellPct(bcc.max_v)
            .cellPct(bcc.avg())
            .cellPct(scc.max_v)
            .cellPct(scc.avg());
    };
    add("exec-driven EU cycles", exec_bcc, exec_scc);
    add("trace EU cycles", trace_bcc, trace_scc);
    add("execution time (DC1)", dc1_bcc, dc1_scc);
    add("execution time (DC2)", dc2_bcc, dc2_scc);

    bench::printTable(table,
                      "Table 4: summary of BCC and SCC benefits "
                      "(divergent workloads)", opts);
    return 0;
}
