/**
 * @file
 * Table 4: summary of BCC and SCC benefits for divergent workloads —
 * maximum and average EU-cycle reduction for the execution-driven
 * suite ("GPGenSim") and the trace workloads, and maximum and average
 * execution-time reduction under the DC1 and DC2 memory subsystems.
 *
 * Paper numbers: EU cycles (exec) 36%/18% max/avg BCC, 38%/24% SCC;
 * traces 31%/12% BCC, 42%/18% SCC; execution time DC1 21%/5% BCC,
 * 21%/7% SCC; DC2 28%/12% BCC, 36%/18% SCC.
 */

#include <algorithm>
#include <vector>

#include "run/experiment.hh"
#include "trace/synthetic.hh"
#include "workloads/registry.hh"

namespace
{

struct MaxAvg
{
    double max_v = 0;
    double sum = 0;
    unsigned n = 0;

    void
    add(double v)
    {
        max_v = std::max(max_v, v);
        sum += v;
        ++n;
    }

    double avg() const { return n ? sum / n : 0; }
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace iwc;
    using compaction::Mode;
    const OptionMap opts(argc, argv);
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 1));
    const unsigned timing_scale =
        static_cast<unsigned>(opts.getInt("timing_scale", scale));

    // The whole table is one sweep: EU-cycle analyses for the
    // execution-driven suite, synthetic analyses for the trace
    // workloads, and the (workload, mode, DC) timing cross-product on
    // the timing subset (the paper's 14 GPGenSim divergent benchmarks;
    // we use the suite's divergent set minus the micro-kernels).
    std::vector<run::RunRequest> requests;

    const std::vector<std::string> exec_names =
        workloads::divergentNames();
    for (const auto &name : exec_names)
        requests.push_back(
            run::RunRequest::functionalTrace(name, scale));

    std::vector<std::string> trace_names;
    for (const auto &profile : trace::paperTraceProfiles()) {
        if (profile.divergentFraction < 0.3)
            continue;
        trace_names.push_back(profile.name);
        requests.push_back(run::RunRequest::syntheticTrace(profile.name));
    }

    std::vector<std::string> timing_names;
    for (const auto &name : exec_names)
        if (name.rfind("micro", 0) != 0)
            timing_names.push_back(name);
    const Mode modes[3] = {Mode::IvbOpt, Mode::Bcc, Mode::Scc};
    for (const auto &name : timing_names) {
        for (const Mode mode : modes) {
            for (unsigned dc = 0; dc < 2; ++dc) {
                gpu::GpuConfig config = gpu::applyOptions(
                    gpu::ivbConfig(mode), opts);
                config.mem.dcLinesPerCycle = dc + 1;
                requests.push_back(run::RunRequest::timing(
                    name, config, timing_scale));
            }
        }
    }

    run::SweepRunner runner(run::sweepOptions(opts));
    const auto results = runner.run(requests);

    MaxAvg exec_bcc, exec_scc, trace_bcc, trace_scc;
    MaxAvg dc1_bcc, dc1_scc, dc2_bcc, dc2_scc;

    std::size_t at = 0;
    for (std::size_t i = 0; i < exec_names.size(); ++i, ++at) {
        exec_bcc.add(results[at].analysis.reduction(Mode::Bcc));
        exec_scc.add(results[at].analysis.reduction(Mode::Scc));
    }
    for (std::size_t i = 0; i < trace_names.size(); ++i, ++at) {
        trace_bcc.add(results[at].analysis.reduction(Mode::Bcc));
        trace_scc.add(results[at].analysis.reduction(Mode::Scc));
    }
    for (std::size_t w = 0; w < timing_names.size(); ++w) {
        auto stats_of = [&](unsigned m, unsigned dc)
            -> const gpu::LaunchStats & {
            return results[at + (w * 3 + m) * 2 + dc].stats;
        };
        auto reduction = [&](unsigned m, unsigned dc) {
            return 1.0 -
                static_cast<double>(stats_of(m, dc).totalCycles) /
                stats_of(0, dc).totalCycles;
        };
        dc1_bcc.add(reduction(1, 0));
        dc1_scc.add(reduction(2, 0));
        dc2_bcc.add(reduction(1, 1));
        dc2_scc.add(reduction(2, 1));
    }

    stats::Table table({"metric", "bcc_max", "bcc_avg", "scc_max",
                        "scc_avg"});
    auto add = [&](const char *name, const MaxAvg &bcc,
                   const MaxAvg &scc) {
        table.row()
            .cell(name)
            .cellPct(bcc.max_v)
            .cellPct(bcc.avg())
            .cellPct(scc.max_v)
            .cellPct(scc.avg());
    };
    add("exec-driven EU cycles", exec_bcc, exec_scc);
    add("trace EU cycles", trace_bcc, trace_scc);
    add("execution time (DC1)", dc1_bcc, dc1_scc);
    add("execution time (DC2)", dc2_bcc, dc2_scc);

    run::printTable(table,
                    "Table 4: summary of BCC and SCC benefits "
                    "(divergent workloads)", opts);
    return 0;
}
