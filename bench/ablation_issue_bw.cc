/**
 * @file
 * Ablation: front-end issue bandwidth (Section 4.3: "adequate
 * instruction fetch bandwidth and front-end processing bandwidth ...
 * may be needed to balance the higher rate of execution ... due to
 * cycle compression"). Sweeps the issue rate and reports how much of
 * the SCC EU-cycle gain survives in execution time.
 */

#include <vector>

#include "run/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    using compaction::Mode;
    const OptionMap opts(argc, argv);
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 1));

    struct IssueRate
    {
        const char *name;
        unsigned width;
        unsigned period;
    };
    const IssueRate rates[] = {
        {"1 instr / 2 cycles", 1, 2},
        {"1 instr / cycle", 1, 1},
        {"2 instr / cycle", 2, 1},
    };
    const char *names[] = {"mandelbrot", "micro_nested"};
    const Mode modes[2] = {Mode::IvbOpt, Mode::Scc};

    // (workload, issue rate, mode) cross-product.
    std::vector<run::RunRequest> requests;
    for (const char *workload : names) {
        for (const IssueRate &rate : rates) {
            for (const Mode mode : modes) {
                gpu::GpuConfig config = gpu::applyOptions(
                    gpu::ivbConfig(mode), opts);
                config.eu.issueWidth = rate.width;
                config.eu.arbitrationPeriod = rate.period;
                requests.push_back(
                    run::RunRequest::timing(workload, config, scale));
            }
        }
    }

    run::SweepRunner runner(run::sweepOptions(opts));
    const auto results = runner.run(requests);

    for (unsigned w = 0; w < std::size(names); ++w) {
        stats::Table table({"issue_rate", "cycles_ivb", "cycles_scc",
                            "scc_time_reduction", "scc_eu_reduction"});
        for (unsigned r = 0; r < std::size(rates); ++r) {
            const auto &ivb = results[(w * 3 + r) * 2 + 0].stats;
            const auto &scc = results[(w * 3 + r) * 2 + 1].stats;
            table.row()
                .cell(rates[r].name)
                .cell(ivb.totalCycles)
                .cell(scc.totalCycles)
                .cellPct(1.0 -
                         static_cast<double>(scc.totalCycles) /
                         ivb.totalCycles)
                .cellPct(ivb.euCycleReduction(Mode::Scc));
        }
        run::printTable(table,
                        std::string("Issue-bandwidth sensitivity: ") +
                        names[w], opts);
    }
    return 0;
}
