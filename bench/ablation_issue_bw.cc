/**
 * @file
 * Ablation: front-end issue bandwidth (Section 4.3: "adequate
 * instruction fetch bandwidth and front-end processing bandwidth ...
 * may be needed to balance the higher rate of execution ... due to
 * cycle compression"). Sweeps the issue rate and reports how much of
 * the SCC EU-cycle gain survives in execution time.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    using compaction::Mode;
    const OptionMap opts(argc, argv);
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 1));

    struct IssueRate
    {
        const char *name;
        unsigned width;
        unsigned period;
    };
    const IssueRate rates[] = {
        {"1 instr / 2 cycles", 1, 2},
        {"1 instr / cycle", 1, 1},
        {"2 instr / cycle", 2, 1},
    };

    for (const char *workload : {"mandelbrot", "micro_nested"}) {
        stats::Table table({"issue_rate", "cycles_ivb", "cycles_scc",
                            "scc_time_reduction", "scc_eu_reduction"});
        for (const IssueRate &rate : rates) {
            gpu::LaunchStats runs[2];
            const Mode modes[2] = {Mode::IvbOpt, Mode::Scc};
            for (unsigned m = 0; m < 2; ++m) {
                gpu::GpuConfig config = gpu::applyOptions(
                    gpu::ivbConfig(modes[m]), opts);
                config.eu.issueWidth = rate.width;
                config.eu.arbitrationPeriod = rate.period;
                runs[m] = bench::runWorkloadTiming(workload, config,
                                                   scale);
            }
            table.row()
                .cell(rate.name)
                .cell(runs[0].totalCycles)
                .cell(runs[1].totalCycles)
                .cellPct(1.0 -
                         static_cast<double>(runs[1].totalCycles) /
                         runs[0].totalCycles)
                .cellPct(runs[0].euCycleReduction(Mode::Scc));
        }
        bench::printTable(table,
                          std::string("Issue-bandwidth sensitivity: ") +
                          workload, opts);
    }
    return 0;
}
