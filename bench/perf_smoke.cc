/**
 * @file
 * Perf-regression smoke driver: times a fixed basket of timing
 * launches at jobs=1 (the serial path, so the number is comparable
 * across machines and runs) and writes the result as
 * BENCH_results.json. The basket is the divergent non-micro suite
 * under the three compaction modes — the same simulation mix the
 * figure drivers spend their time in — so a hot-path regression in
 * the interpreter, EU model, or memory system shows up directly as a
 * cycles_per_sec drop.
 *
 * Options: scale=N (default 1), out=FILE (default BENCH_results.json
 * in the working directory), csv/jobs are accepted but jobs is
 * forced to 1 — a timing driver that raced worker threads would
 * measure contention, not the simulator.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "run/experiment.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    using compaction::Mode;
    const OptionMap opts(argc, argv);
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 1));
    const std::string out_path =
        opts.getString("out", "BENCH_results.json");

    std::vector<run::RunRequest> requests;
    const Mode modes[3] = {Mode::IvbOpt, Mode::Bcc, Mode::Scc};
    for (const auto &name : workloads::divergentNames()) {
        if (name.rfind("micro", 0) == 0)
            continue;
        for (const Mode mode : modes) {
            requests.push_back(run::RunRequest::timing(
                name, gpu::applyOptions(gpu::ivbConfig(mode), opts),
                scale));
        }
    }

    run::SweepOptions sweep;
    sweep.jobs = 1; // serial: wall time must measure the simulator
    run::SweepRunner runner(sweep);

    const auto t0 = std::chrono::steady_clock::now();
    const auto results = runner.run(requests);
    const auto t1 = std::chrono::steady_clock::now();

    const double wall_s =
        std::chrono::duration<double>(t1 - t0).count();
    std::uint64_t sim_cycles = 0;
    for (const auto &result : results)
        sim_cycles += result.stats.totalCycles;
    const double cycles_per_sec =
        wall_s > 0 ? static_cast<double>(sim_cycles) / wall_s : 0;

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    fatal_if(f == nullptr, "cannot write %s", out_path.c_str());
    std::fprintf(f,
                 "{\n"
                 "  \"driver\": \"perf_smoke\",\n"
                 "  \"wall_s\": %.3f,\n"
                 "  \"sim_cycles\": %llu,\n"
                 "  \"cycles_per_sec\": %.0f\n"
                 "}\n",
                 wall_s, static_cast<unsigned long long>(sim_cycles),
                 cycles_per_sec);
    std::fclose(f);

    std::printf("perf_smoke: %zu launches, %.3f s wall, "
                "%llu simulated cycles, %.2f Mcycles/s -> %s\n",
                results.size(), wall_s,
                static_cast<unsigned long long>(sim_cycles),
                cycles_per_sec / 1e6, out_path.c_str());
    return 0;
}
