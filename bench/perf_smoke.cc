/**
 * @file
 * Perf-regression smoke driver, now backend-aware. Two baskets:
 *
 *  1. The timing basket (divergent non-micro suite under the three
 *     compaction modes, jobs=1) run once per execution backend —
 *     catches hot-path regressions in the interpreter, EU model, or
 *     memory system, and shows what the vectorized backend buys the
 *     cycle-level simulator (which interleaves functional execution
 *     with the timing model, so the gain is diluted by the latter).
 *
 *  2. Functional-throughput rows: ALU-heavy workloads executed on the
 *     observer-free functional runner (where macro-stepping and the
 *     host-SIMD lane kernels both engage) under the scalar and vector
 *     backends, reporting the per-workload speedup. This is the
 *     undiluted backend comparison.
 *
 *  3. A trace-replay row: a synthetic trace is streamed to a chunked
 *     container on disk, then analyzed out-of-core through the
 *     prefetching cursor (src/tracestream) — records/s tracks the
 *     codec + cursor + analyzer hot path, and the sharded run's
 *     speedup tracks the chunk-parallel analyzer (~1.0 on one core).
 *
 * Results land in BENCH_results.json. Options: scale=N (default 1),
 * func_reps=N (default 3), trace_records=N (default 4M), out=FILE;
 * jobs is forced to 1 — a timing driver that raced worker threads
 * would measure contention, not the simulator.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "run/experiment.hh"
#include "trace/synthetic.hh"
#include "tracestream/analyze.hh"
#include "tracestream/writer.hh"
#include "workloads/registry.hh"

namespace
{

using namespace iwc;

double
seconds_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct TimingRow
{
    func::BackendKind backend;
    double wallS = 0;
    std::uint64_t simCycles = 0;
    /** Cycles the event loop actually visited (cycles minus the idle
     *  gaps the calendar skipped): the engine's event rate. */
    std::uint64_t eventsVisited = 0;
};

TimingRow
runTimingBasket(func::BackendKind backend, unsigned scale,
                const OptionMap &opts)
{
    using compaction::Mode;
    std::vector<run::RunRequest> requests;
    const Mode modes[3] = {Mode::IvbOpt, Mode::Bcc, Mode::Scc};
    for (const auto &name : workloads::divergentNames()) {
        if (name.rfind("micro", 0) == 0)
            continue;
        for (const Mode mode : modes) {
            run::RunRequest request = run::RunRequest::timing(
                name, gpu::applyOptions(gpu::ivbConfig(mode), opts),
                scale);
            request.backend = backend;
            requests.push_back(std::move(request));
        }
    }

    run::SweepOptions sweep;
    sweep.jobs = 1; // serial: wall time must measure the simulator
    run::SweepRunner runner(sweep);

    TimingRow row;
    row.backend = backend;
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = runner.run(requests);
    row.wallS = seconds_since(t0);
    for (const auto &result : results) {
        row.simCycles += result.stats.totalCycles;
        row.eventsVisited += result.stats.totalCycles -
                             result.stats.idleCyclesSkipped;
    }
    return row;
}

struct CompareRow
{
    unsigned points = 0;   ///< compare jobs (one per workload)
    unsigned modes = 0;    ///< timed modes per point
    double wallS = 0;
    std::uint64_t simCycles = 0; ///< summed over every timed mode
    std::uint64_t eventsVisited = 0;
};

/**
 * The multi-mode compare basket: every divergent non-micro workload
 * as ONE four-mode JobKind::TimingCompare point — workload build,
 * predecode, plan construction, and functional execution happen once
 * per point, the lead mode simulates fully, and the other three
 * replay its issue trace. Contrast cycles/s here with the timing
 * basket above to see what the single-build path saves.
 */
CompareRow
runCompareBasket(func::BackendKind backend, unsigned scale,
                 const OptionMap &opts)
{
    CompareRow row;
    row.modes = compaction::kNumModes;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto &name : workloads::divergentNames()) {
        if (name.rfind("micro", 0) == 0)
            continue;
        run::RunRequest request = run::RunRequest::timingCompare(
            name, gpu::applyOptions(gpu::ivbConfig(), opts), scale);
        request.backend = backend;
        const run::RunResult result = run::executeRun(request);
        ++row.points;
        for (const run::RunResult::ModeStats &entry : result.compare) {
            row.simCycles += entry.stats.totalCycles;
            row.eventsVisited += entry.stats.totalCycles -
                                 entry.stats.idleCyclesSkipped;
        }
    }
    row.wallS = seconds_since(t0);
    return row;
}

struct FunctionalRow
{
    std::string workload;
    unsigned simdWidth = 0;
    std::uint64_t instructions = 0;
    double scalarWallS = 0;
    double vectorWallS = 0;

    double
    speedup() const
    {
        return vectorWallS > 0 ? scalarWallS / vectorWallS : 0;
    }
};

FunctionalRow
runFunctional(const std::string &name, unsigned scale, unsigned reps)
{
    FunctionalRow row;
    row.workload = name;
    const func::BackendKind kinds[2] = {func::BackendKind::Scalar,
                                        func::BackendKind::Vector};
    for (const func::BackendKind kind : kinds) {
        double wall = 0;
        for (unsigned rep = 0; rep < reps; ++rep) {
            gpu::GpuConfig config = gpu::ivbConfig();
            config.eu.backend = kind;
            gpu::Device dev(config);
            const auto w = workloads::make(name, dev, scale);
            row.simdWidth = w.kernel.simdWidth();
            const auto t0 = std::chrono::steady_clock::now();
            row.instructions = dev.launchFunctional(
                w.kernel, w.globalSize, w.localSize, w.args);
            wall += seconds_since(t0);
        }
        if (kind == func::BackendKind::Scalar)
            row.scalarWallS = wall;
        else
            row.vectorWallS = wall;
    }
    return row;
}

struct ReplayRow
{
    std::uint64_t records = 0;
    std::uint64_t codedBytes = 0;
    double writeWallS = 0;
    double streamWallS = 0;  ///< jobs=1, prefetching cursor
    double shardedWallS = 0; ///< jobs=hardware threads

    double
    recordsPerSec() const
    {
        return streamWallS > 0
            ? static_cast<double>(records) / streamWallS
            : 0;
    }

    double
    shardSpeedup() const
    {
        return shardedWallS > 0 ? streamWallS / shardedWallS : 0;
    }
};

ReplayRow
runTraceReplay(const std::string &path, std::uint64_t records)
{
    ReplayRow row;
    trace::SyntheticProfile profile =
        trace::profileByName("luxmark_sky");
    profile.instructions = records;
    {
        tracestream::WriterOptions wo;
        wo.name = profile.name;
        tracestream::ChunkedTraceWriter writer(path, std::move(wo));
        const auto t0 = std::chrono::steady_clock::now();
        trace::synthesizeTo(profile, [&](const trace::TraceRecord &r) {
            writer.append(r);
        });
        writer.finish();
        row.writeWallS = seconds_since(t0);
        row.records = writer.recordsWritten();
        row.codedBytes = writer.codedBytes();
    }
    {
        const auto t0 = std::chrono::steady_clock::now();
        const trace::TraceAnalysis a =
            tracestream::analyzeTraceStream(path);
        row.streamWallS = seconds_since(t0);
        fatal_if(a.records != row.records,
                 "replay mismatch: wrote %llu records, analyzed %llu",
                 static_cast<unsigned long long>(row.records),
                 static_cast<unsigned long long>(a.records));
    }
    {
        tracestream::StreamAnalyzeOptions options;
        options.jobs = std::thread::hardware_concurrency();
        if (options.jobs == 0)
            options.jobs = 1;
        const auto t0 = std::chrono::steady_clock::now();
        tracestream::analyzeTraceStream(path, options);
        row.shardedWallS = seconds_since(t0);
    }
    std::remove(path.c_str());
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    const OptionMap opts(argc, argv);
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 1));
    const unsigned reps =
        static_cast<unsigned>(opts.getInt("func_reps", 3));
    const std::string out_path =
        opts.getString("out", "BENCH_results.json");

    TimingRow timing[2] = {
        runTimingBasket(func::BackendKind::Scalar, scale, opts),
        runTimingBasket(func::BackendKind::Vector, scale, opts),
    };
    const CompareRow compare =
        runCompareBasket(func::BackendKind::Vector, scale, opts);

    // ALU-dominated workloads where the lane kernels engage; the
    // divergent suite above covers the fallback-heavy mixes.
    const char *func_names[] = {"mandelbrot", "urng", "mm", "bscholes"};
    std::vector<FunctionalRow> func_rows;
    for (const char *name : func_names)
        func_rows.push_back(runFunctional(name, scale, reps));

    const auto trace_records = static_cast<std::uint64_t>(
        opts.getInt("trace_records", 4000000));
    const ReplayRow replay =
        runTraceReplay(out_path + ".replay.iwct", trace_records);

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    fatal_if(f == nullptr, "cannot write %s", out_path.c_str());
    std::fprintf(f, "{\n  \"results\": [\n");
    for (unsigned i = 0; i < 2; ++i) {
        const TimingRow &row = timing[i];
        const double cps = row.wallS > 0
            ? static_cast<double>(row.simCycles) / row.wallS
            : 0;
        const double eps = row.wallS > 0
            ? static_cast<double>(row.eventsVisited) / row.wallS
            : 0;
        std::fprintf(f,
                     "    {\n"
                     "      \"driver\": \"perf_smoke_timing\",\n"
                     "      \"backend\": \"%s\",\n"
                     "      \"wall_s\": %.3f,\n"
                     "      \"sim_cycles\": %llu,\n"
                     "      \"cycles_per_sec\": %.0f,\n"
                     "      \"events\": %llu,\n"
                     "      \"events_per_sec\": %.0f\n"
                     "    },\n",
                     func::backendKindName(row.backend), row.wallS,
                     static_cast<unsigned long long>(row.simCycles),
                     cps,
                     static_cast<unsigned long long>(row.eventsVisited),
                     eps);
    }
    std::fprintf(f,
                 "    {\n"
                 "      \"driver\": \"perf_smoke_compare\",\n"
                 "      \"backend\": \"vector\",\n"
                 "      \"points\": %u,\n"
                 "      \"modes\": %u,\n"
                 "      \"wall_s\": %.3f,\n"
                 "      \"sim_cycles\": %llu,\n"
                 "      \"cycles_per_sec\": %.0f,\n"
                 "      \"events\": %llu,\n"
                 "      \"events_per_sec\": %.0f\n"
                 "    },\n",
                 compare.points, compare.modes, compare.wallS,
                 static_cast<unsigned long long>(compare.simCycles),
                 compare.wallS > 0
                     ? static_cast<double>(compare.simCycles) /
                         compare.wallS
                     : 0,
                 static_cast<unsigned long long>(compare.eventsVisited),
                 compare.wallS > 0
                     ? static_cast<double>(compare.eventsVisited) /
                         compare.wallS
                     : 0);
    for (std::size_t i = 0; i < func_rows.size(); ++i) {
        const FunctionalRow &row = func_rows[i];
        std::fprintf(
            f,
            "    {\n"
            "      \"driver\": \"perf_smoke_functional\",\n"
            "      \"workload\": \"%s\",\n"
            "      \"simd_width\": %u,\n"
            "      \"instructions\": %llu,\n"
            "      \"scalar_wall_s\": %.3f,\n"
            "      \"vector_wall_s\": %.3f,\n"
            "      \"speedup\": %.2f\n"
            "    }%s\n",
            row.workload.c_str(), row.simdWidth,
            static_cast<unsigned long long>(row.instructions),
            row.scalarWallS, row.vectorWallS, row.speedup(),
            ",");
    }
    std::fprintf(f,
                 "    {\n"
                 "      \"driver\": \"perf_smoke_trace_replay\",\n"
                 "      \"records\": %llu,\n"
                 "      \"coded_bytes\": %llu,\n"
                 "      \"write_wall_s\": %.3f,\n"
                 "      \"stream_wall_s\": %.3f,\n"
                 "      \"sharded_wall_s\": %.3f,\n"
                 "      \"records_per_sec\": %.0f,\n"
                 "      \"shard_speedup\": %.2f\n"
                 "    }\n",
                 static_cast<unsigned long long>(replay.records),
                 static_cast<unsigned long long>(replay.codedBytes),
                 replay.writeWallS, replay.streamWallS,
                 replay.shardedWallS, replay.recordsPerSec(),
                 replay.shardSpeedup());
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);

    for (const TimingRow &row : timing) {
        std::printf("perf_smoke timing basket [%s]: %.3f s wall, "
                    "%llu simulated cycles, %.2f Mcycles/s, "
                    "%.2f Mevents/s\n",
                    func::backendKindName(row.backend), row.wallS,
                    static_cast<unsigned long long>(row.simCycles),
                    row.wallS > 0
                        ? static_cast<double>(row.simCycles) /
                            row.wallS / 1e6
                        : 0,
                    row.wallS > 0
                        ? static_cast<double>(row.eventsVisited) /
                            row.wallS / 1e6
                        : 0);
    }
    std::printf("perf_smoke compare basket [vector]: %u points x %u "
                "modes, %.3f s wall, %llu simulated cycles, "
                "%.2f Mcycles/s, %.2f Mevents/s\n",
                compare.points, compare.modes, compare.wallS,
                static_cast<unsigned long long>(compare.simCycles),
                compare.wallS > 0
                    ? static_cast<double>(compare.simCycles) /
                        compare.wallS / 1e6
                    : 0,
                compare.wallS > 0
                    ? static_cast<double>(compare.eventsVisited) /
                        compare.wallS / 1e6
                    : 0);
    for (const FunctionalRow &row : func_rows) {
        std::printf("perf_smoke functional [%s simd%u]: scalar %.3f s, "
                    "vector %.3f s, speedup %.2fx\n",
                    row.workload.c_str(), row.simdWidth,
                    row.scalarWallS, row.vectorWallS, row.speedup());
    }
    std::printf("perf_smoke trace replay: %llu records, write %.3f s, "
                "stream %.3f s (%.1f Mrec/s), sharded %.3f s "
                "(%.2fx)\n",
                static_cast<unsigned long long>(replay.records),
                replay.writeWallS, replay.streamWallS,
                replay.recordsPerSec() / 1e6, replay.shardedWallS,
                replay.shardSpeedup());
    std::printf("-> %s\n", out_path.c_str());
    return 0;
}
