/**
 * @file
 * Dynamic-energy comparison across compaction modes (quantifying
 * Section 4.3's qualitative discussion): BCC saves both cycle
 * overhead and operand-fetch energy; SCC saves more cycles but no
 * fetch energy and pays for crossbar toggles.
 */

#include <vector>

#include "compaction/energy.hh"
#include "run/experiment.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    using compaction::Mode;
    const OptionMap opts(argc, argv);
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 1));

    // Each workload's functional run feeds its own EnergyModel; the
    // per-workload jobs are independent, so they sweep in parallel.
    const std::vector<std::string> names = workloads::divergentNames();
    struct Row
    {
        double ivb, bcc, scc, swizzle_share;
    };
    std::vector<Row> rows(names.size());

    run::SweepRunner runner(run::sweepOptions(opts));
    runner.forEach(names.size(), [&](std::size_t i) {
        gpu::Device dev;
        workloads::Workload w = workloads::make(names[i], dev, scale);
        compaction::EnergyModel model;
        dev.launchFunctional(
            w.kernel, w.globalSize, w.localSize, w.args,
            [&](const isa::Instruction &in, LaneMask mask) {
                if (isa::isControlFlow(in.op) ||
                    in.op == isa::Opcode::Send)
                    return;
                unsigned srcs = 0;
                for (const auto *op :
                     {&in.src0, &in.src1, &in.src2})
                    srcs += op->isGrf() ? 1 : 0;
                const compaction::ExecShape shape{
                    in.simdWidth,
                    static_cast<std::uint8_t>(isa::execElemBytes(in)),
                    mask};
                model.addAlu(shape, std::max(srcs, 1u));
            });
        const auto &scc = model.breakdown(Mode::Scc);
        rows[i] = {model.relative(Mode::IvbOpt),
                   model.relative(Mode::Bcc),
                   model.relative(Mode::Scc),
                   scc.total() > 0 ? scc.swizzle / scc.total() : 0};
    });

    stats::Table table({"workload", "ivb_rel_energy", "bcc_rel_energy",
                        "scc_rel_energy", "scc_swizzle_share"});
    for (std::size_t i = 0; i < names.size(); ++i)
        table.row()
            .cell(names[i])
            .cellPct(rows[i].ivb)
            .cellPct(rows[i].bcc)
            .cellPct(rows[i].scc)
            .cellPct(rows[i].swizzle_share);
    run::printTable(table,
                    "ALU + register-file dynamic energy relative to "
                    "the no-compaction baseline (100%)", opts);
    return 0;
}
