/**
 * @file
 * Dynamic-energy comparison across compaction modes (quantifying
 * Section 4.3's qualitative discussion): BCC saves both cycle
 * overhead and operand-fetch energy; SCC saves more cycles but no
 * fetch energy and pays for crossbar toggles.
 */

#include "bench_util.hh"
#include "compaction/energy.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    using compaction::Mode;
    const OptionMap opts(argc, argv);
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 1));

    stats::Table table({"workload", "ivb_rel_energy", "bcc_rel_energy",
                        "scc_rel_energy", "scc_swizzle_share"});

    for (const auto &name : workloads::divergentNames()) {
        gpu::Device dev;
        workloads::Workload w = workloads::make(name, dev, scale);
        compaction::EnergyModel model;
        dev.launchFunctional(
            w.kernel, w.globalSize, w.localSize, w.args,
            [&](const isa::Instruction &in, LaneMask mask) {
                if (isa::isControlFlow(in.op) ||
                    in.op == isa::Opcode::Send)
                    return;
                unsigned srcs = 0;
                for (const auto *op :
                     {&in.src0, &in.src1, &in.src2})
                    srcs += op->isGrf() ? 1 : 0;
                const compaction::ExecShape shape{
                    in.simdWidth,
                    static_cast<std::uint8_t>(isa::execElemBytes(in)),
                    mask};
                model.addAlu(shape, std::max(srcs, 1u));
            });
        const auto &scc = model.breakdown(Mode::Scc);
        table.row()
            .cell(name)
            .cellPct(model.relative(Mode::IvbOpt))
            .cellPct(model.relative(Mode::Bcc))
            .cellPct(model.relative(Mode::Scc))
            .cellPct(scc.total() > 0 ? scc.swizzle / scc.total() : 0);
    }
    bench::printTable(table,
                      "ALU + register-file dynamic energy relative to "
                      "the no-compaction baseline (100%)", opts);
    return 0;
}
