/**
 * @file
 * Figure 3: SIMD efficiency of the full application collection,
 * classified into coherent (>= 95%) and divergent workloads. Covers
 * every executable kernel of the suite plus the synthetic stand-ins
 * for the paper's trace-only workloads.
 *
 * Paper shape to reproduce: a wide spread from ~30% to ~100% with a
 * clear coherent cluster above 95% and a long divergent tail.
 */

#include <algorithm>
#include <vector>

#include "run/experiment.hh"
#include "trace/synthetic.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    const OptionMap opts(argc, argv);
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 1));

    // Declare the sweep: every executable workload functionally, every
    // paper trace profile synthetically.
    std::vector<run::RunRequest> requests;
    for (const auto &entry : workloads::registry())
        requests.push_back(
            run::RunRequest::functionalTrace(entry.name, scale));
    for (const auto &profile : trace::paperTraceProfiles())
        requests.push_back(run::RunRequest::syntheticTrace(profile.name));

    run::SweepRunner runner(run::sweepOptions(opts));
    const auto results = runner.run(requests);

    struct Row
    {
        std::string name;
        std::string source;
        double efficiency;
    };
    std::vector<Row> rows;
    for (const auto &result : results)
        rows.push_back({result.label,
                        result.kind == run::JobKind::FunctionalTrace
                            ? "exec"
                            : "trace",
                        result.analysis.simdEfficiency()});

    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.efficiency < b.efficiency;
              });

    stats::Table table({"workload", "source", "simd_efficiency",
                        "class"});
    unsigned divergent = 0;
    for (const Row &row : rows) {
        const bool is_divergent = row.efficiency < 0.95;
        divergent += is_divergent;
        table.row()
            .cell(row.name)
            .cell(row.source)
            .cellPct(row.efficiency)
            .cell(is_divergent ? "divergent" : "coherent");
    }
    run::printTable(table,
                    "Figure 3: SIMD efficiency, coherent/divergent "
                    "benchmarks", opts);

    std::printf("total workloads: %zu, divergent: %u, coherent: %zu\n",
                rows.size(), divergent, rows.size() - divergent);
    return 0;
}
