/**
 * @file
 * Figure 11: ray-tracing kernels — reduction in total execution
 * cycles under data-cluster bandwidths of one (DC1) and two (DC2)
 * lines per cycle, compared against the pure EU-cycle reduction, plus
 * the achieved data-cluster throughput.
 *
 * Paper shape: with DC1 the execution-time gain is a fraction of the
 * EU-cycle gain (demand exceeds one line/cycle); with DC2 roughly 90%
 * of the EU-cycle gain is realized; DC throughput demand sits between
 * one and two lines per cycle for most RT workloads.
 */

#include <vector>

#include "run/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    using compaction::Mode;
    const OptionMap opts(argc, argv);
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 2));

    const char *names[] = {
        "rt_pr_alien",      "rt_pr_bulldozer",  "rt_pr_windmill",
        "rt_ao_alien8",     "rt_ao_bulldozer8", "rt_ao_windmill8",
        "rt_ao_alien16",    "rt_ao_bulldozer16",
        "rt_ao_windmill16",
    };
    const Mode modes[3] = {Mode::IvbOpt, Mode::Bcc, Mode::Scc};

    // (workload, mode, dc) cross-product.
    std::vector<run::RunRequest> requests;
    for (const char *name : names) {
        for (const Mode mode : modes) {
            for (unsigned dc = 0; dc < 2; ++dc) {
                gpu::GpuConfig config = gpu::applyOptions(
                    gpu::ivbConfig(mode), opts);
                config.mem.dcLinesPerCycle = dc + 1;
                requests.push_back(
                    run::RunRequest::timing(name, config, scale));
            }
        }
    }

    run::SweepRunner runner(run::sweepOptions(opts));
    const auto results = runner.run(requests);

    stats::Table table({"workload", "bcc_total_dc1", "scc_total_dc1",
                        "bcc_total_dc2", "scc_total_dc2", "bcc_eu",
                        "scc_eu", "dc_tput_ivb", "dc_tput_scc"});

    for (unsigned w = 0; w < std::size(names); ++w) {
        auto stats_of = [&](unsigned m, unsigned dc)
            -> const gpu::LaunchStats & {
            return results[(w * 3 + m) * 2 + dc].stats;
        };
        auto total_red = [&](unsigned m, unsigned dc) {
            return 1.0 -
                static_cast<double>(stats_of(m, dc).totalCycles) /
                stats_of(0, dc).totalCycles;
        };
        const auto &eu = stats_of(0, 0).eu;
        table.row()
            .cell(names[w])
            .cellPct(total_red(1, 0))
            .cellPct(total_red(2, 0))
            .cellPct(total_red(1, 1))
            .cellPct(total_red(2, 1))
            .cellPct(1.0 - static_cast<double>(eu.euCycles(Mode::Bcc)) /
                     eu.euCycles(Mode::IvbOpt))
            .cellPct(1.0 - static_cast<double>(eu.euCycles(Mode::Scc)) /
                     eu.euCycles(Mode::IvbOpt))
            .cell(stats_of(0, 1).dcThroughput(), 3)
            .cell(stats_of(2, 1).dcThroughput(), 3);
    }

    run::printTable(table,
                    "Figure 11: ray tracing - total-cycle reduction "
                    "(DC1/DC2) vs EU-cycle reduction, DC throughput "
                    "(lines/cycle under DC2)", opts);
    return 0;
}
