/**
 * @file
 * Figure 12: Rodinia divergent kernels — reduction in total execution
 * cycles with the real 128KB L3 and with a perfect (infinite) L3,
 * compared against the EU-cycle reduction.
 *
 * Paper shape: EU-cycle savings (~18-21% average) translate into
 * much smaller total-time savings; BFS sees ~no benefit with the real
 * L3 but improves under a perfect L3 (memory-divergence bound);
 * LavaMD sees no benefit even with a perfect L3 (workload imbalance).
 */

#include <vector>

#include "run/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    using compaction::Mode;
    const OptionMap opts(argc, argv);
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 2));

    const char *names[] = {"bfs", "hotspot", "lavamd", "nw",
                           "partfilt"};
    const Mode modes[3] = {Mode::IvbOpt, Mode::Bcc, Mode::Scc};

    // (workload, mode, real/perfect-L3) cross-product.
    std::vector<run::RunRequest> requests;
    for (const char *name : names) {
        for (const Mode mode : modes) {
            for (unsigned l3 = 0; l3 < 2; ++l3) {
                gpu::GpuConfig config = gpu::applyOptions(
                    gpu::ivbConfig(mode), opts);
                config.mem.perfectL3 = l3 == 1;
                requests.push_back(
                    run::RunRequest::timing(name, config, scale));
            }
        }
    }

    run::SweepRunner runner(run::sweepOptions(opts));
    const auto results = runner.run(requests);

    stats::Table table({"workload", "bcc_total", "scc_total",
                        "bcc_total_pl3", "scc_total_pl3", "bcc_eu",
                        "scc_eu"});

    for (unsigned w = 0; w < std::size(names); ++w) {
        auto stats_of = [&](unsigned m, unsigned l3)
            -> const gpu::LaunchStats & {
            return results[(w * 3 + m) * 2 + l3].stats;
        };
        auto total_red = [&](unsigned m, unsigned l3) {
            return 1.0 -
                static_cast<double>(stats_of(m, l3).totalCycles) /
                stats_of(0, l3).totalCycles;
        };
        const auto &eu = stats_of(0, 0).eu;
        table.row()
            .cell(names[w])
            .cellPct(total_red(1, 0))
            .cellPct(total_red(2, 0))
            .cellPct(total_red(1, 1))
            .cellPct(total_red(2, 1))
            .cellPct(1.0 - static_cast<double>(eu.euCycles(Mode::Bcc)) /
                     eu.euCycles(Mode::IvbOpt))
            .cellPct(1.0 - static_cast<double>(eu.euCycles(Mode::Scc)) /
                     eu.euCycles(Mode::IvbOpt));
    }

    run::printTable(table,
                    "Figure 12: Rodinia kernels - total-cycle "
                    "reduction (real and perfect L3) vs EU-cycle "
                    "reduction", opts);
    return 0;
}
