/**
 * @file
 * The paper's central comparison, quantified (Sections 1-2 and the
 * abstract's claim): intra-warp compaction "provid[es] the bulk of
 * the benefits of more complex approaches" while "intrinsically not
 * creat[ing] additional memory divergence". For each divergent
 * workload this driver computes
 *
 *   - intra-warp BCC and SCC EU-cycle reduction (this paper), and
 *   - an UPPER BOUND on inter-warp (TBC/LWM-style) compaction:
 *     perfect PC synchronization across the workgroup's warps, free
 *     implicit barriers, home-lane-preserving merge,
 *
 * together with the memory-divergence cost of the merge: distinct
 * cache lines per memory message before and after inter-warp
 * compaction (intra-warp compaction leaves this metric untouched by
 * construction).
 */

#include <algorithm>
#include <vector>

#include "compaction/interwarp.hh"
#include "run/experiment.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    const OptionMap opts(argc, argv);
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 1));

    std::vector<std::string> names;
    for (const auto &name : workloads::divergentNames())
        if (name.rfind("micro", 0) != 0)
            names.push_back(name);

    // One detailed functional run per workload, swept in parallel;
    // each job owns its Device and InterWarpAnalyzer.
    std::vector<compaction::InterWarpStats> per_workload(names.size());
    run::SweepRunner runner(run::sweepOptions(opts));
    runner.forEach(names.size(), [&](std::size_t i) {
        gpu::Device dev;
        workloads::Workload w = workloads::make(names[i], dev, scale);
        compaction::InterWarpAnalyzer analyzer;
        gpu::runKernelFunctionalDetailed(
            w.kernel, dev.memory(), w.globalSize, w.localSize,
            [&] {
                std::vector<std::uint32_t> words;
                for (const auto &arg : w.args)
                    words.push_back(arg.raw);
                return words;
            }(),
            [&](const gpu::DetailedStep &step) {
                analyzer.add(step.workgroup, step.subgroup, step.ip,
                             step.occurrence, *step.result);
            });
        per_workload[i] = analyzer.finalize();
    });

    stats::Table table({"workload", "intra_bcc", "intra_scc",
                        "inter_warp_bound", "inter+scc_bound",
                        "scc_share_of_bound", "lines_per_msg_intra",
                        "lines_per_msg_inter", "mem_div_increase"});

    double sum_share = 0, sum_div = 0;
    unsigned count = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto &s = per_workload[i];
        const double bcc = s.reductionVsBaseline(s.intraBccCycles);
        const double scc = s.reductionVsBaseline(s.intraSccCycles);
        const double inter = s.reductionVsBaseline(s.interWarpCycles);
        const double inter_scc =
            s.reductionVsBaseline(s.interWarpSccCycles);
        const double best_bound = std::max(inter, inter_scc);
        const double share =
            best_bound > 0 ? std::min(scc / best_bound, 2.0) : 1.0;
        const double intra_div = s.intraLinesPerMessage();
        const double inter_div = s.interLinesPerMessage();
        const double div_increase =
            intra_div > 0 ? inter_div / intra_div - 1.0 : 0.0;

        table.row()
            .cell(names[i])
            .cellPct(bcc)
            .cellPct(scc)
            .cellPct(inter)
            .cellPct(inter_scc)
            .cellPct(share)
            .cell(intra_div, 2)
            .cell(inter_div, 2)
            .cellPct(div_increase);
        sum_share += share;
        sum_div += div_increase;
        ++count;
    }
    run::printTable(table,
                    "Intra-warp (this paper) vs idealized inter-warp "
                    "compaction bound (reductions vs no-compaction "
                    "baseline)", opts);
    std::printf("average: SCC captures %.0f%% of the idealized "
                "inter-warp bound; inter-warp merging raises memory "
                "divergence by %.0f%% on average, intra-warp by 0%% "
                "(by construction)\n",
                100.0 * sum_share / count, 100.0 * sum_div / count);
    return 0;
}
