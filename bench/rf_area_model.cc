/**
 * @file
 * Section 4.3 register-file area comparison: the BCC-optimized
 * register file versus the baseline and versus the 8-banked per-lane
 * addressable organization required by inter-warp compaction schemes.
 *
 * Paper numbers: BCC RF overhead ~10% over baseline; inter-warp
 * per-lane RF overhead > 40%; the SCC RF is wider but shorter than
 * baseline (no overhead).
 */

#include "bench_util.hh"
#include "compaction/rf_area.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    using namespace iwc::compaction;
    const OptionMap opts(argc, argv);

    stats::Table table({"organization", "rows", "bits/row", "banks",
                        "relative_area", "overhead"});
    auto add = [&](const char *name, const RfOrganization &org) {
        const double rel = rfAreaRelative(org);
        table.row()
            .cell(name)
            .cell(org.rows)
            .cell(org.bitsPerRow)
            .cell(org.banks)
            .cell(rel, 3)
            .cellPct(rel - 1.0);
    };
    add("baseline (256b rows)", baselineRf());
    add("BCC (128b half-register)", bccRf());
    add("SCC (512b wide/short)", sccRf());
    add("per-lane 8-banked (inter-warp)", perLaneRf());
    bench::printTable(table,
                      "Section 4.3: register-file area comparison",
                      opts);

    // Sensitivity: area vs bank count at constant capacity.
    stats::Table sweep({"banks", "relative_area"});
    for (unsigned banks = 1; banks <= 16; banks *= 2) {
        RfOrganization org = baselineRf();
        org.banks = banks;
        org.rows = baselineRf().rows / banks;
        org.bitsPerRow = baselineRf().bitsPerRow;
        sweep.row().cell(banks).cell(rfAreaRelative(org), 3);
    }
    bench::printTable(sweep, "Banking sweep at constant capacity",
                      opts);
    return 0;
}
