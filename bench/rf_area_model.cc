/**
 * @file
 * Section 4.3 register-file area comparison: the BCC-optimized
 * register file versus the baseline and versus the 8-banked per-lane
 * addressable organization required by inter-warp compaction schemes.
 *
 * Paper numbers: BCC RF overhead ~10% over baseline; inter-warp
 * per-lane RF overhead > 40%; the SCC RF is wider but shorter than
 * baseline (no overhead).
 */

#include <vector>

#include "compaction/rf_area.hh"
#include "run/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    using namespace iwc::compaction;
    const OptionMap opts(argc, argv);

    struct Case
    {
        const char *name;
        RfOrganization org;
    };
    const std::vector<Case> cases = {
        {"baseline (256b rows)", baselineRf()},
        {"BCC (128b half-register)", bccRf()},
        {"SCC (512b wide/short)", sccRf()},
        {"per-lane 8-banked (inter-warp)", perLaneRf()},
    };

    // The area evaluations are independent points; sweep them through
    // the harness like every other driver (trivially fast, but the
    // jobs=N/csv=1 interface stays uniform across bench/).
    run::SweepRunner runner(run::sweepOptions(opts));
    std::vector<double> rel(cases.size());
    runner.forEach(cases.size(), [&](std::size_t i) {
        rel[i] = rfAreaRelative(cases[i].org);
    });

    stats::Table table({"organization", "rows", "bits/row", "banks",
                        "relative_area", "overhead"});
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const RfOrganization &org = cases[i].org;
        table.row()
            .cell(cases[i].name)
            .cell(org.rows)
            .cell(org.bitsPerRow)
            .cell(org.banks)
            .cell(rel[i], 3)
            .cellPct(rel[i] - 1.0);
    }
    run::printTable(table,
                    "Section 4.3: register-file area comparison",
                    opts);

    // Sensitivity: area vs bank count at constant capacity.
    std::vector<unsigned> banks;
    for (unsigned b = 1; b <= 16; b *= 2)
        banks.push_back(b);
    std::vector<double> sweep_rel(banks.size());
    runner.forEach(banks.size(), [&](std::size_t i) {
        RfOrganization org = baselineRf();
        org.banks = banks[i];
        org.rows = baselineRf().rows / banks[i];
        org.bitsPerRow = baselineRf().bitsPerRow;
        sweep_rel[i] = rfAreaRelative(org);
    });

    stats::Table sweep({"banks", "relative_area"});
    for (std::size_t i = 0; i < banks.size(); ++i)
        sweep.row().cell(banks[i]).cell(sweep_rel[i], 3);
    run::printTable(sweep, "Banking sweep at constant capacity",
                    opts);
    return 0;
}
