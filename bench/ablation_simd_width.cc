/**
 * @file
 * Ablation: SIMD width sensitivity (Section 7: "SIMD efficiency of
 * GPGPU applications reduces with wider SIMD widths ... one can
 * therefore expect a larger optimization opportunity"). Random
 * per-lane divergence at a fixed branch-taken probability is swept
 * across instruction widths 8/16/32 on the fixed 4-lane ALU.
 */

#include "bench_util.hh"
#include "common/rng.hh"
#include "common/bitutil.hh"
#include "compaction/cycle_plan.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    using compaction::Mode;
    const OptionMap opts(argc, argv);
    const std::uint64_t samples =
        static_cast<std::uint64_t>(opts.getInt("samples", 200000));

    for (const double p_active : {0.75, 0.5, 0.25}) {
        stats::Table table({"simd_width", "simd_efficiency",
                            "bcc_reduction", "scc_reduction"});
        for (const unsigned width : {8u, 16u, 32u}) {
            Rng rng(1234 + width);
            std::uint64_t base = 0, ivb = 0, bcc = 0, scc = 0;
            std::uint64_t active = 0;
            for (std::uint64_t i = 0; i < samples; ++i) {
                LaneMask mask = 0;
                for (unsigned ch = 0; ch < width; ++ch)
                    if (rng.chance(p_active))
                        mask |= LaneMask{1} << ch;
                const compaction::ExecShape shape{
                    static_cast<std::uint8_t>(width), 4, mask};
                base += compaction::planCycleCount(Mode::Baseline,
                                                   shape);
                ivb += compaction::planCycleCount(Mode::IvbOpt, shape);
                bcc += compaction::planCycleCount(Mode::Bcc, shape);
                scc += compaction::planCycleCount(Mode::Scc, shape);
                active += popCount(mask);
            }
            table.row()
                .cell(width)
                .cellPct(static_cast<double>(active) /
                         (samples * width))
                .cellPct(1.0 - static_cast<double>(bcc) / ivb)
                .cellPct(1.0 - static_cast<double>(scc) / ivb);
        }
        char title[96];
        std::snprintf(title, sizeof(title),
                      "Width sweep, per-lane active probability %.2f",
                      p_active);
        bench::printTable(table, title, opts);
    }
    return 0;
}
