/**
 * @file
 * Ablation: SIMD width sensitivity (Section 7: "SIMD efficiency of
 * GPGPU applications reduces with wider SIMD widths ... one can
 * therefore expect a larger optimization opportunity"). Random
 * per-lane divergence at a fixed branch-taken probability is swept
 * across instruction widths 8/16/32 on the fixed 4-lane ALU.
 */

#include <vector>

#include "common/bitutil.hh"
#include "common/rng.hh"
#include "compaction/cycle_plan.hh"
#include "run/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    using compaction::Mode;
    const OptionMap opts(argc, argv);
    const std::uint64_t samples =
        static_cast<std::uint64_t>(opts.getInt("samples", 200000));

    const double probs[] = {0.75, 0.5, 0.25};
    const unsigned widths[] = {8u, 16u, 32u};

    // Each (probability, width) cell is an independent Monte Carlo
    // sweep with its own width-seeded Rng — scheduling cannot change
    // the sampled mask stream.
    struct Cell
    {
        std::uint64_t ivb = 0, bcc = 0, scc = 0, active = 0;
    };
    std::vector<Cell> cells(std::size(probs) * std::size(widths));
    run::SweepRunner runner(run::sweepOptions(opts));
    runner.forEach(cells.size(), [&](std::size_t i) {
        const double p_active = probs[i / std::size(widths)];
        const unsigned width = widths[i % std::size(widths)];
        Cell &cell = cells[i];
        Rng rng(1234 + width);
        for (std::uint64_t s = 0; s < samples; ++s) {
            LaneMask mask = 0;
            for (unsigned ch = 0; ch < width; ++ch)
                if (rng.chance(p_active))
                    mask |= LaneMask{1} << ch;
            const compaction::ExecShape shape{
                static_cast<std::uint8_t>(width), 4, mask};
            cell.ivb += compaction::planCycleCount(Mode::IvbOpt, shape);
            cell.bcc += compaction::planCycleCount(Mode::Bcc, shape);
            cell.scc += compaction::planCycleCount(Mode::Scc, shape);
            cell.active += popCount(mask);
        }
    });

    for (unsigned p = 0; p < std::size(probs); ++p) {
        stats::Table table({"simd_width", "simd_efficiency",
                            "bcc_reduction", "scc_reduction"});
        for (unsigned w = 0; w < std::size(widths); ++w) {
            const Cell &cell = cells[p * std::size(widths) + w];
            table.row()
                .cell(widths[w])
                .cellPct(static_cast<double>(cell.active) /
                         (samples * widths[w]))
                .cellPct(1.0 -
                         static_cast<double>(cell.bcc) / cell.ivb)
                .cellPct(1.0 -
                         static_cast<double>(cell.scc) / cell.ivb);
        }
        char title[96];
        std::snprintf(title, sizeof(title),
                      "Width sweep, per-lane active probability %.2f",
                      probs[p]);
        run::printTable(table, title, opts);
    }
    return 0;
}
