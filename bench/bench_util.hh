/**
 * @file
 * Shared plumbing for the per-figure/per-table benchmark drivers:
 * running a workload functionally into the trace analyzer, running it
 * on the timing simulator under a given machine config, and printing
 * results as plain-text or CSV tables.
 *
 * Every driver accepts "key=value" options: scale=N (problem size),
 * csv=1 (CSV output), plus the machine overrides documented in
 * gpu/gpu_config.hh.
 */

#ifndef IWC_BENCH_BENCH_UTIL_HH
#define IWC_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <string>

#include "common/config.hh"
#include "gpu/device.hh"
#include "stats/table.hh"
#include "trace/analyzer.hh"
#include "trace/synthetic.hh"
#include "workloads/registry.hh"

namespace iwc::bench
{

/** Functionally executes a workload and analyzes its mask stream. */
inline trace::TraceAnalysis
analyzeWorkload(const std::string &name, unsigned scale)
{
    gpu::Device dev;
    workloads::Workload w = workloads::make(name, dev, scale);
    trace::TraceAnalyzer analyzer;
    dev.launchFunctional(
        w.kernel, w.globalSize, w.localSize, w.args,
        [&](const isa::Instruction &in, LaneMask mask) {
            analyzer.add(trace::recordOf(in, mask));
        });
    return analyzer.result();
}

/** Runs a workload on the timing simulator. */
inline gpu::LaunchStats
runWorkloadTiming(const std::string &name, const gpu::GpuConfig &config,
                  unsigned scale)
{
    gpu::Device dev(config);
    workloads::Workload w = workloads::make(name, dev, scale);
    return dev.launch(w.kernel, w.globalSize, w.localSize, w.args);
}

/** Prints @p table as text or CSV per the "csv" option. */
inline void
printTable(const stats::Table &table, const std::string &title,
           const OptionMap &opts)
{
    if (opts.getBool("csv", false))
        table.printCsv(std::cout);
    else
        table.print(std::cout, title);
    std::cout << '\n';
}

/** Percent formatting of a cycle reduction fraction. */
inline std::string
pct(double fraction)
{
    return stats::formatPct(fraction, 1);
}

} // namespace iwc::bench

#endif // IWC_BENCH_BENCH_UTIL_HH
