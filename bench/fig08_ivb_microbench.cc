/**
 * @file
 * Figure 8: the Ivy Bridge divergence micro-benchmark. A balanced
 * if/else construct runs with controlled lane patterns; execution
 * time is reported relative to the non-divergent pattern 0xFFFF under
 * the modeled Ivy Bridge optimization.
 *
 * Paper shape to reproduce (relative time under IvbOpt):
 *   0xFFFF = 100%, 0x00FF = 100% (half-mask optimized),
 *   0xF0F0 ~ 200% (needs BCC), 0xAAAA ~ 200% (needs SCC),
 *   0xFF0F partially optimized (its else path 0x00F0 runs as SIMD8).
 */

#include <vector>

#include "run/experiment.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    const OptionMap opts(argc, argv);
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 2));

    const std::uint32_t patterns[] = {0xffff, 0xf0f0, 0x00ff, 0xff0f,
                                      0xaaaa};
    const compaction::Mode modes[] = {
        compaction::Mode::Baseline, compaction::Mode::IvbOpt,
        compaction::Mode::Bcc, compaction::Mode::Scc};

    // The (pattern, mode) cross-product as one declarative sweep.
    std::vector<run::RunRequest> requests;
    for (const std::uint32_t pattern : patterns) {
        for (const compaction::Mode mode : modes) {
            char label[24];
            std::snprintf(label, sizeof(label), "ifelse_0x%04X",
                          pattern);
            run::RunRequest request = run::RunRequest::timing(
                label, gpu::applyOptions(gpu::ivbConfig(mode), opts),
                scale);
            request.factory = [pattern](gpu::Device &dev, unsigned s) {
                return workloads::makeMicroIfElsePattern(dev, s,
                                                         pattern);
            };
            requests.push_back(std::move(request));
        }
    }

    run::SweepRunner runner(run::sweepOptions(opts));
    const auto results = runner.run(requests);

    // Total cycles per (pattern, mode).
    double cycles[5][4] = {};
    for (unsigned p = 0; p < 5; ++p)
        for (unsigned m = 0; m < 4; ++m)
            cycles[p][m] = static_cast<double>(
                results[p * 4 + m].stats.totalCycles);

    stats::Table table({"pattern", "rel_time_ivb", "rel_time_bcc",
                        "rel_time_scc", "rel_time_no_opt"});
    for (unsigned p = 0; p < 5; ++p) {
        char name[16];
        std::snprintf(name, sizeof(name), "0x%04X", patterns[p]);
        table.row()
            .cell(name)
            .cellPct(cycles[p][1] / cycles[0][1])
            .cellPct(cycles[p][2] / cycles[0][2])
            .cellPct(cycles[p][3] / cycles[0][3])
            .cellPct(cycles[p][0] / cycles[0][0]);
    }
    run::printTable(table,
                    "Figure 8: relative execution time vs enabled-"
                    "lane pattern (100% = 0xFFFF)", opts);
    return 0;
}
