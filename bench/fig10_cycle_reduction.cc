/**
 * @file
 * Figure 10: percentage reduction in EU execution cycles from BCC and
 * from BCC+SCC, over and above the existing Ivy Bridge optimization,
 * for every divergent workload (execution-driven and trace-based).
 *
 * Paper shape: up to ~42% total reduction, ~20% average; SCC always
 * at least matches BCC; LuxMark/BulletPhysics/RightWare 25-42%;
 * GLBench 15-22% mostly from SCC; face detection ~30% mostly SCC.
 */

#include <algorithm>
#include <vector>

#include "run/experiment.hh"
#include "trace/synthetic.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    using compaction::Mode;
    const OptionMap opts(argc, argv);
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 1));

    std::vector<run::RunRequest> requests;
    for (const auto &name : workloads::divergentNames())
        requests.push_back(
            run::RunRequest::functionalTrace(name, scale));
    for (const auto &profile : trace::paperTraceProfiles()) {
        if (profile.divergentFraction < 0.3)
            continue;
        requests.push_back(run::RunRequest::syntheticTrace(profile.name));
    }

    run::SweepRunner runner(run::sweepOptions(opts));
    const auto results = runner.run(requests);

    stats::Table table({"workload", "source", "bcc_reduction",
                        "additional_scc", "total_scc_reduction"});
    double sum_bcc = 0, sum_scc = 0, max_bcc = 0, max_scc = 0;
    unsigned count = 0;

    for (const auto &result : results) {
        const double bcc = result.analysis.reduction(Mode::Bcc);
        const double scc = result.analysis.reduction(Mode::Scc);
        table.row()
            .cell(result.label)
            .cell(result.kind == run::JobKind::FunctionalTrace
                      ? "exec"
                      : "trace")
            .cellPct(bcc)
            .cellPct(scc - bcc)
            .cellPct(scc);
        sum_bcc += bcc;
        sum_scc += scc;
        max_bcc = std::max(max_bcc, bcc);
        max_scc = std::max(max_scc, scc);
        ++count;
    }

    run::printTable(table,
                    "Figure 10: EU execution-cycle reduction over "
                    "the Ivy Bridge optimization (divergent apps)",
                    opts);
    // All profiles can be filtered out (e.g. a future pruned suite);
    // report averages only when there is something to average.
    if (count > 0)
        std::printf("BCC: max %.1f%%, avg %.1f%% | BCC+SCC: max "
                    "%.1f%%, avg %.1f%% (n=%u)\n",
                    max_bcc * 100, sum_bcc / count * 100,
                    max_scc * 100, sum_scc / count * 100, count);
    else
        std::printf("no divergent workloads selected (n=0)\n");
    return 0;
}
