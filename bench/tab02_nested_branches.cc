/**
 * @file
 * Table 2: Ivy Bridge optimization, BCC, and SCC benefit for nested
 * divergent branches. Two views are produced:
 *
 *  1. The analytic mask view: exactly the paper's table — for each
 *     nesting level, the branch-path execution masks are evaluated
 *     with the cycle planners and the per-technique savings reported.
 *  2. The simulated view: the micro_nested kernels run on the timing
 *     simulator under each mode (this is the paper's "correlate the
 *     calculated benefits against the GPGenSim simulation results").
 *
 * Paper numbers: L1 -> SCC 50%; L2 -> SCC 75%; L3 -> BCC 50% +
 * SCC 25%; L4 -> BCC 25% + SCC 50% (with IVB contributing at L4).
 */

#include <vector>

#include "compaction/cycle_plan.hh"
#include "run/experiment.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    using compaction::Mode;
    const OptionMap opts(argc, argv);
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 2));

    // --- Analytic view: all branch-path masks per nesting level ---
    struct Level
    {
        const char *name;
        std::vector<LaneMask> masks;
    };
    const std::vector<Level> levels = {
        {"L1", {0x5555, 0xaaaa}},
        {"L2", {0x1111, 0x4444, 0x8888, 0x2222}},
        {"L3", {0x0101, 0x1010, 0x0404, 0x4040, 0x0808, 0x8080,
                0x0202, 0x2020}},
        {"L4", {0x0001, 0x0002, 0x0004, 0x0008, 0x0010, 0x0020,
                0x0040, 0x0080, 0x0100, 0x0200, 0x0400, 0x0800,
                0x1000, 0x2000, 0x4000, 0x8000}},
    };

    stats::Table analytic({"level", "ivb_benefit", "bcc_benefit",
                           "additional_scc", "total_scc"});
    for (const Level &level : levels) {
        std::uint64_t base = 0, ivb = 0, bcc = 0, scc = 0;
        for (const LaneMask mask : level.masks) {
            const compaction::ExecShape shape{16, 4, mask};
            base += compaction::planCycleCount(Mode::Baseline, shape);
            ivb += compaction::planCycleCount(Mode::IvbOpt, shape);
            bcc += compaction::planCycleCount(Mode::Bcc, shape);
            scc += compaction::planCycleCount(Mode::Scc, shape);
        }
        const double b = static_cast<double>(base);
        analytic.row()
            .cell(level.name)
            .cellPct((b - ivb) / b)
            .cellPct(static_cast<double>(ivb - bcc) / b)
            .cellPct(static_cast<double>(bcc - scc) / b)
            .cellPct((b - scc) / b);
    }
    run::printTable(analytic,
                    "Table 2 (analytic): benefit per technique on "
                    "nested-branch path masks", opts);

    // --- Simulated view: micro_nested kernels on the simulator ---
    const Mode modes[4] = {Mode::Baseline, Mode::IvbOpt, Mode::Bcc,
                           Mode::Scc};
    std::vector<run::RunRequest> requests;
    for (unsigned depth = 1; depth <= 4; ++depth) {
        for (const Mode mode : modes) {
            run::RunRequest request = run::RunRequest::timing(
                "micro_nested_d" + std::to_string(depth),
                gpu::applyOptions(gpu::ivbConfig(mode), opts), scale);
            request.factory = [depth](gpu::Device &dev, unsigned s) {
                return workloads::makeMicroNestedDepth(dev, s, depth);
            };
            requests.push_back(std::move(request));
        }
    }

    run::SweepRunner runner(run::sweepOptions(opts));
    const auto results = runner.run(requests);

    stats::Table simulated({"level", "cycles_base", "cycles_ivb",
                            "cycles_bcc", "cycles_scc", "bcc_vs_ivb",
                            "scc_vs_ivb"});
    for (unsigned depth = 1; depth <= 4; ++depth) {
        double cycles[4] = {};
        for (unsigned m = 0; m < 4; ++m)
            cycles[m] = static_cast<double>(
                results[(depth - 1) * 4 + m].stats.totalCycles);
        // Built with += rather than "L" + to_string(...): the
        // char*+string&& overload trips GCC 12's -Wrestrict false
        // positive (PR105651).
        std::string label("L");
        label += std::to_string(depth);
        simulated.row()
            .cell(label)
            .cell(cycles[0], 0)
            .cell(cycles[1], 0)
            .cell(cycles[2], 0)
            .cell(cycles[3], 0)
            .cellPct(1.0 - cycles[2] / cycles[1])
            .cellPct(1.0 - cycles[3] / cycles[1]);
    }
    run::printTable(simulated,
                    "Table 2 (simulated): micro_nested kernel "
                    "execution time per mode", opts);
    return 0;
}
