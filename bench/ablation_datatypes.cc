/**
 * @file
 * Ablation: datatype-width sensitivity (Section 4.1: "Benefits may be
 * higher for wider datatypes (doubles and long integers) that take
 * more cycles through the execution pipe, and conversely, benefit may
 * be lower for narrow datatypes"). Runs the if/else micro-kernel with
 * word, float, and double compute under each mode.
 */

#include <vector>

#include "run/experiment.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    using compaction::Mode;
    const OptionMap opts(argc, argv);
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 2));
    const std::uint32_t pattern = static_cast<std::uint32_t>(
        opts.getInt("pattern", 0x1111));

    struct TypeCase
    {
        const char *name;
        isa::DataType type;
    };
    const TypeCase cases[] = {
        {"w (16-bit)", isa::DataType::W},
        {"f (32-bit)", isa::DataType::F},
        {"df (64-bit)", isa::DataType::DF},
    };
    const Mode modes[2] = {Mode::IvbOpt, Mode::Scc};

    std::vector<run::RunRequest> requests;
    for (const TypeCase &c : cases) {
        for (const Mode mode : modes) {
            run::RunRequest request = run::RunRequest::timing(
                std::string("ifelse_") + c.name,
                gpu::applyOptions(gpu::ivbConfig(mode), opts), scale);
            const isa::DataType type = c.type;
            request.factory = [pattern, type](gpu::Device &dev,
                                              unsigned s) {
                return workloads::makeMicroIfElseTyped(dev, s, pattern,
                                                       type);
            };
            requests.push_back(std::move(request));
        }
    }

    run::SweepRunner runner(run::sweepOptions(opts));
    const auto results = runner.run(requests);

    stats::Table table({"datatype", "cycles_ivb", "cycles_scc",
                        "scc_time_reduction", "scc_eu_reduction"});
    for (unsigned c = 0; c < std::size(cases); ++c) {
        const auto &ivb = results[c * 2 + 0].stats;
        const auto &scc = results[c * 2 + 1].stats;
        table.row()
            .cell(cases[c].name)
            .cell(ivb.totalCycles)
            .cell(scc.totalCycles)
            .cellPct(1.0 - static_cast<double>(scc.totalCycles) /
                     ivb.totalCycles)
            .cellPct(ivb.euCycleReduction(Mode::Scc));
    }
    char title[80];
    std::snprintf(title, sizeof(title),
                  "Datatype sweep, lane pattern 0x%04X", pattern);
    run::printTable(table, title, opts);
    return 0;
}
