/**
 * @file
 * Ablation: datatype-width sensitivity (Section 4.1: "Benefits may be
 * higher for wider datatypes (doubles and long integers) that take
 * more cycles through the execution pipe, and conversely, benefit may
 * be lower for narrow datatypes"). Runs the if/else micro-kernel with
 * word, float, and double compute under each mode.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace iwc;
    using compaction::Mode;
    const OptionMap opts(argc, argv);
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 2));
    const std::uint32_t pattern = static_cast<std::uint32_t>(
        opts.getInt("pattern", 0x1111));

    struct TypeCase
    {
        const char *name;
        isa::DataType type;
    };
    const TypeCase cases[] = {
        {"w (16-bit)", isa::DataType::W},
        {"f (32-bit)", isa::DataType::F},
        {"df (64-bit)", isa::DataType::DF},
    };

    stats::Table table({"datatype", "cycles_ivb", "cycles_scc",
                        "scc_time_reduction", "scc_eu_reduction"});
    for (const TypeCase &c : cases) {
        gpu::LaunchStats runs[2];
        const Mode modes[2] = {Mode::IvbOpt, Mode::Scc};
        for (unsigned m = 0; m < 2; ++m) {
            gpu::Device dev(gpu::applyOptions(gpu::ivbConfig(modes[m]),
                                              opts));
            workloads::Workload w = workloads::makeMicroIfElseTyped(
                dev, scale, pattern, c.type);
            runs[m] = dev.launch(w.kernel, w.globalSize, w.localSize,
                                 w.args);
        }
        table.row()
            .cell(c.name)
            .cell(runs[0].totalCycles)
            .cell(runs[1].totalCycles)
            .cellPct(1.0 - static_cast<double>(runs[1].totalCycles) /
                     runs[0].totalCycles)
            .cellPct(runs[0].euCycleReduction(Mode::Scc));
    }
    char title[80];
    std::snprintf(title, sizeof(title),
                  "Datatype sweep, lane pattern 0x%04X", pattern);
    bench::printTable(table, title, opts);
    return 0;
}
