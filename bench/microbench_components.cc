/**
 * @file
 * Component-level microbenchmarks (google-benchmark): throughput of
 * the hot simulator paths — cycle planning, the SCC control
 * algorithm, the interpreter, the coalescer, the cache model, and the
 * sweep-runner dispatch path every bench driver now rides on.
 */

#include <benchmark/benchmark.h>

#include <atomic>

#include "compaction/cycle_plan.hh"
#include "compaction/scc_algorithm.hh"
#include "func/interp.hh"
#include "isa/builder.hh"
#include "mem/cache.hh"
#include "mem/coalescer.hh"
#include "run/sweep_runner.hh"

namespace
{

using namespace iwc;

void
BM_PlanCycleCount(benchmark::State &state)
{
    const auto mode = static_cast<compaction::Mode>(state.range(0));
    std::uint32_t mask = 0x1357;
    for (auto _ : state) {
        mask = mask * 1664525u + 1013904223u;
        const compaction::ExecShape shape{
            16, 4, static_cast<LaneMask>(mask & 0xffff)};
        benchmark::DoNotOptimize(
            compaction::planCycleCount(mode, shape));
    }
}
BENCHMARK(BM_PlanCycleCount)->DenseRange(0, 3);

void
BM_PlanSccFull(benchmark::State &state)
{
    std::uint32_t mask = 0x2468;
    for (auto _ : state) {
        mask = mask * 1664525u + 1013904223u;
        const compaction::ExecShape shape{
            16, 4, static_cast<LaneMask>(mask & 0xffff)};
        benchmark::DoNotOptimize(compaction::planScc(shape).cycles());
    }
}
BENCHMARK(BM_PlanSccFull);

void
BM_InterpreterAluLoop(benchmark::State &state)
{
    isa::KernelBuilder b("bench", 16);
    auto x = b.tmp(isa::DataType::F);
    auto i = b.tmp(isa::DataType::D);
    b.mov(x, b.f(1.0f));
    b.mov(i, b.d(0));
    b.loop_();
    for (int k = 0; k < 8; ++k)
        b.mad(x, x, b.f(1.0001f), b.f(0.1f));
    b.add(i, i, b.d(1));
    b.cmp(isa::CondMod::Lt, 1, i, b.d(1000));
    b.endLoop(1);
    const isa::Kernel kernel = b.build();

    func::GlobalMemory gmem;
    func::Interpreter interp(kernel, gmem);
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        func::ThreadState t;
        t.reset(0xffff);
        while (!t.halted()) {
            interp.step(t);
            ++instrs;
        }
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterAluLoop)->Unit(benchmark::kMillisecond);

void
BM_Coalescer(benchmark::State &state)
{
    func::MemAccess acc;
    acc.op = isa::SendOp::GatherLoad;
    acc.elemBytes = 4;
    acc.mask = 0xffff;
    std::uint32_t seed = 1;
    for (auto _ : state) {
        for (unsigned ch = 0; ch < 16; ++ch) {
            seed = seed * 1664525u + 1013904223u;
            acc.addrs[ch] = seed % (1u << state.range(0));
        }
        benchmark::DoNotOptimize(mem::coalesceLines(acc));
    }
}
BENCHMARK(BM_Coalescer)->Arg(10)->Arg(20);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::Cache cache("bench", 128 * 1024, 64);
    std::uint32_t seed = 7;
    Cycle now = 0;
    for (auto _ : state) {
        seed = seed * 1664525u + 1013904223u;
        const Addr line = (seed % (1u << state.range(0))) * 64ull;
        benchmark::DoNotOptimize(cache.access(line, false, ++now));
    }
}
BENCHMARK(BM_CacheAccess)->Arg(10)->Arg(16);

void
BM_SweepRunnerDispatch(benchmark::State &state)
{
    run::SweepOptions options;
    options.jobs = static_cast<unsigned>(state.range(0));
    run::SweepRunner runner(options);
    std::atomic<std::uint64_t> sink{0};
    for (auto _ : state) {
        runner.forEach(256, [&](std::size_t i) {
            sink.fetch_add(i, std::memory_order_relaxed);
        });
    }
    benchmark::DoNotOptimize(sink.load());
    state.counters["jobs/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * 256,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SweepRunnerDispatch)->Arg(1)->Arg(2)->Arg(4);

void
BM_SweepTraceCache(benchmark::State &state)
{
    // Four modes of one workload: one functional execution plus three
    // cache hits per sweep (the tab04/fig10 request shape).
    std::vector<run::RunRequest> requests;
    for (const auto mode :
         {compaction::Mode::Baseline, compaction::Mode::IvbOpt,
          compaction::Mode::Bcc, compaction::Mode::Scc}) {
        run::RunRequest request = run::RunRequest::functionalTrace("va");
        request.config = gpu::ivbConfig(mode);
        requests.push_back(std::move(request));
    }
    run::SweepRunner runner;
    for (auto _ : state)
        benchmark::DoNotOptimize(runner.run(requests));
}
BENCHMARK(BM_SweepTraceCache)->Unit(benchmark::kMillisecond);

} // namespace
