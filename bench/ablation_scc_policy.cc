/**
 * @file
 * Ablation: the Figure 6 SCC algorithm deliberately minimizes
 * intra-quad lane swizzles ("this algorithm attempts to minimize the
 * number of intra-quad lane swizzles"). This driver quantifies that
 * choice against a naive packer that fills hardware lanes in channel
 * order without preferring home positions: both reach the optimal
 * cycle count, but the naive packer toggles far more crossbar lanes
 * (dynamic energy in the swizzle network).
 */

#include <vector>

#include "common/bitutil.hh"
#include "compaction/scc_algorithm.hh"
#include "run/experiment.hh"
#include "workloads/registry.hh"

namespace
{

using iwc::LaneMask;
using iwc::compaction::ExecShape;

/** Naive packing: enabled channels fill lanes strictly in order. */
unsigned
naiveSwizzledLanes(const ExecShape &shape)
{
    const unsigned gw =
        iwc::compaction::groupWidth(shape.simdWidth, shape.elemBytes);
    unsigned slot = 0;
    unsigned swizzled = 0;
    for (unsigned ch = 0; ch < shape.simdWidth; ++ch) {
        if (!(shape.maskedExec() & (LaneMask{1} << ch)))
            continue;
        const unsigned hw_lane = slot % gw;
        if (hw_lane != ch % gw)
            ++swizzled;
        ++slot;
    }
    return swizzled;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace iwc;
    const OptionMap opts(argc, argv);
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 1));

    run::SweepRunner runner(run::sweepOptions(opts));

    // Exhaustive SIMD16 sweep, partitioned into independent chunks.
    constexpr unsigned kChunks = 16;
    constexpr std::uint32_t kMasks = 0xffff;
    struct Partial
    {
        std::uint64_t fig6 = 0, naive = 0, lanes = 0;
    };
    std::vector<Partial> partials(kChunks);
    runner.forEach(kChunks, [&](std::size_t c) {
        Partial &p = partials[c];
        for (std::uint32_t mask = 1 + c; mask <= kMasks;
             mask += kChunks) {
            const ExecShape shape{16, 4, mask};
            p.fig6 += compaction::planScc(shape).swizzledLanes();
            p.naive += naiveSwizzledLanes(shape);
            p.lanes += popCount(mask);
        }
    });
    std::uint64_t fig6_swizzles = 0, naive_swizzles = 0, lanes = 0;
    for (const Partial &p : partials) {
        fig6_swizzles += p.fig6;
        naive_swizzles += p.naive;
        lanes += p.lanes;
    }

    stats::Table table({"policy", "swizzled_lane_fraction"});
    table.row().cell("figure-6 (home-lane preferring)").cellPct(
        static_cast<double>(fig6_swizzles) / lanes);
    table.row().cell("naive in-order packer").cellPct(
        static_cast<double>(naive_swizzles) / lanes);
    run::printTable(table,
                    "SCC swizzle activity over all SIMD16 masks "
                    "(both policies are cycle-optimal)", opts);

    // The same comparison on real workload mask streams, one
    // functional run per workload.
    const std::vector<std::string> names = {
        "mandelbrot", "bfs", "rt_ao_alien16", "treesearch"};
    struct WlRow
    {
        std::uint64_t f6 = 0, nv = 0, total = 0;
    };
    std::vector<WlRow> wl_rows(names.size());
    runner.forEach(names.size(), [&](std::size_t i) {
        WlRow &row = wl_rows[i];
        gpu::Device dev;
        workloads::Workload w = workloads::make(names[i], dev, scale);
        dev.launchFunctional(
            w.kernel, w.globalSize, w.localSize, w.args,
            [&](const isa::Instruction &in, LaneMask mask) {
                if (isa::isControlFlow(in.op) ||
                    in.op == isa::Opcode::Send)
                    return;
                const ExecShape shape{
                    in.simdWidth,
                    static_cast<std::uint8_t>(isa::execElemBytes(in)),
                    mask};
                row.f6 += compaction::planScc(shape).swizzledLanes();
                row.nv += naiveSwizzledLanes(shape);
                row.total += popCount(mask & in.widthMask());
            });
    });

    stats::Table wl({"workload", "fig6_swizzle_frac",
                     "naive_swizzle_frac"});
    for (std::size_t i = 0; i < names.size(); ++i) {
        const WlRow &row = wl_rows[i];
        wl.row()
            .cell(names[i])
            .cellPct(row.total
                         ? static_cast<double>(row.f6) / row.total
                         : 0)
            .cellPct(row.total
                         ? static_cast<double>(row.nv) / row.total
                         : 0);
    }
    run::printTable(wl, "Swizzle activity on workload mask streams",
                    opts);
    return 0;
}
