/**
 * @file
 * Ablation: the Figure 6 SCC algorithm deliberately minimizes
 * intra-quad lane swizzles ("this algorithm attempts to minimize the
 * number of intra-quad lane swizzles"). This driver quantifies that
 * choice against a naive packer that fills hardware lanes in channel
 * order without preferring home positions: both reach the optimal
 * cycle count, but the naive packer toggles far more crossbar lanes
 * (dynamic energy in the swizzle network).
 */

#include "bench_util.hh"
#include "common/bitutil.hh"
#include "compaction/scc_algorithm.hh"

namespace
{

using iwc::LaneMask;
using iwc::compaction::ExecShape;

/** Naive packing: enabled channels fill lanes strictly in order. */
unsigned
naiveSwizzledLanes(const ExecShape &shape)
{
    const unsigned gw =
        iwc::compaction::groupWidth(shape.simdWidth, shape.elemBytes);
    unsigned slot = 0;
    unsigned swizzled = 0;
    for (unsigned ch = 0; ch < shape.simdWidth; ++ch) {
        if (!(shape.maskedExec() & (LaneMask{1} << ch)))
            continue;
        const unsigned hw_lane = slot % gw;
        if (hw_lane != ch % gw)
            ++swizzled;
        ++slot;
    }
    return swizzled;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace iwc;
    const OptionMap opts(argc, argv);
    const unsigned scale =
        static_cast<unsigned>(opts.getInt("scale", 1));

    // Exhaustive SIMD16 sweep.
    std::uint64_t fig6_swizzles = 0, naive_swizzles = 0, lanes = 0;
    for (std::uint32_t mask = 1; mask <= 0xffff; ++mask) {
        const ExecShape shape{16, 4, mask};
        fig6_swizzles += compaction::planScc(shape).swizzledLanes();
        naive_swizzles += naiveSwizzledLanes(shape);
        lanes += popCount(mask);
    }

    stats::Table table({"policy", "swizzled_lane_fraction"});
    table.row().cell("figure-6 (home-lane preferring)").cellPct(
        static_cast<double>(fig6_swizzles) / lanes);
    table.row().cell("naive in-order packer").cellPct(
        static_cast<double>(naive_swizzles) / lanes);
    bench::printTable(table,
                      "SCC swizzle activity over all SIMD16 masks "
                      "(both policies are cycle-optimal)", opts);

    // The same comparison on real workload mask streams.
    stats::Table wl({"workload", "fig6_swizzle_frac",
                     "naive_swizzle_frac"});
    for (const char *name : {"mandelbrot", "bfs", "rt_ao_alien16",
                             "treesearch"}) {
        std::uint64_t f6 = 0, nv = 0, total = 0;
        gpu::Device dev;
        workloads::Workload w = workloads::make(name, dev, scale);
        dev.launchFunctional(
            w.kernel, w.globalSize, w.localSize, w.args,
            [&](const isa::Instruction &in, LaneMask mask) {
                if (isa::isControlFlow(in.op) ||
                    in.op == isa::Opcode::Send)
                    return;
                const ExecShape shape{
                    in.simdWidth,
                    static_cast<std::uint8_t>(isa::execElemBytes(in)),
                    mask};
                f6 += compaction::planScc(shape).swizzledLanes();
                nv += naiveSwizzledLanes(shape);
                total += popCount(mask & in.widthMask());
            });
        wl.row()
            .cell(name)
            .cellPct(total ? static_cast<double>(f6) / total : 0)
            .cellPct(total ? static_cast<double>(nv) / total : 0);
    }
    bench::printTable(wl, "Swizzle activity on workload mask streams",
                      opts);
    return 0;
}
